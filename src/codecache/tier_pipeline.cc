#include "codecache/tier_pipeline.h"

#include <cmath>

#include "support/format.h"
#include "support/logging.h"

namespace gencache::cache {

// --- TemperaturePolicy ---

TemperaturePolicy::TemperaturePolicy(std::uint32_t threshold,
                                     TimeUs half_life, bool eager)
    : PromotionPolicy(true, true), threshold_(threshold),
      halfLife_(half_life), eager_(eager)
{
    if (half_life == 0) {
        fatal("temperature policy needs a positive half-life");
    }
}

void
TemperaturePolicy::decay(Fragment &frag, TimeUs now) const
{
    if (now <= frag.lastAccess) {
        return;
    }
    TimeUs steps = (now - frag.lastAccess) / halfLife_;
    if (steps == 0) {
        return;
    }
    frag.accessCount =
        steps >= 32 ? 0 : frag.accessCount >> steps;
    // Advance the clock by whole half-lives only, so partial periods
    // keep accumulating instead of being forgiven on every access.
    frag.lastAccess += steps * halfLife_;
}

void
TemperaturePolicy::onEnter(Fragment &frag, TimeUs now)
{
    frag.accessCount = 0;
    frag.lastAccess = now;
}

bool
TemperaturePolicy::onHit(Fragment &frag, TimeUs now)
{
    decay(frag, now);
    ++frag.accessCount;
    return eager_ && frag.accessCount >= threshold_;
}

bool
TemperaturePolicy::admitOnEviction(Fragment &frag, TimeUs now)
{
    decay(frag, now);
    return frag.accessCount >= threshold_;
}

// --- TierPipeline ---

Generation
tierLabelFor(std::size_t tier, std::size_t tier_count)
{
    if (tier >= tier_count) {
        GENCACHE_PANIC("tier {} out of range for a {}-tier pipeline",
                       tier, tier_count);
    }
    if (tier_count == 1) {
        return Generation::Unified;
    }
    if (tier == 0) {
        return Generation::Nursery;
    }
    if (tier == tier_count - 1) {
        return Generation::Persistent;
    }
    if (tier_count == 3) {
        return Generation::Probation;
    }
    return static_cast<Generation>(
        static_cast<std::size_t>(Generation::Tier1) + tier - 1);
}

TierPipeline::TierPipeline(TierPipelineInit init)
    : name_(std::move(init.name)), specs_(std::move(init.tiers)),
      edges_(std::move(init.edges))
{
    if (specs_.empty()) {
        fatal("tier pipeline needs at least one tier");
    }
    if (specs_.size() > kMaxTiers) {
        fatal("tier pipeline supports at most {} tiers (got {})",
              kMaxTiers, specs_.size());
    }
    if (edges_.size() != specs_.size() - 1) {
        fatal("tier pipeline needs {} edge policies for {} tiers "
              "(got {})", specs_.size() - 1, specs_.size(),
              edges_.size());
    }
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i] == nullptr) {
            fatal("tier pipeline edge {} has no policy", i);
        }
    }
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].policy == LocalPolicy::Unbounded) {
            if (specs_.size() != 1) {
                fatal("unbounded tiers are only legal in a "
                      "single-tier pipeline");
            }
        } else if (specs_[i].capacityBytes == 0) {
            fatal("tier {} needs a positive capacity", i);
        }
    }
    tiers_.reserve(specs_.size());
    labels_.reserve(specs_.size());
    tierStats_.resize(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        tiers_.push_back(
            makeLocalCache(specs_[i].policy, specs_[i].capacityBytes));
        labels_.push_back(tierLabelFor(i, specs_.size()));
        tierPtrs_[i] = tiers_.back().get();
    }
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        edgePtrs_[i] = edges_[i].get();
        if (edges_[i]->observesHits()) {
            hitObserverMask_ |= static_cast<std::uint8_t>(1u << i);
        }
        if (edges_[i]->observesEntry()) {
            entryTrackerMask_ |= static_cast<std::uint8_t>(1u << i);
        }
    }
    multiTier_ = specs_.size() > 1;
}

bool
TierPipeline::sharedProbe(TraceId id, TimeUs now)
{
    ++sharedStats_.probes;
    if (!sharedStore_->probe(sharedKeyOf(id), sharedProcess_)) {
        return false;
    }
    ++stats_.hits;
    ++sharedStats_.hits;
    if (listener_ != nullptr && listener_->wantsHits()) {
        listener_->onHit(id, Generation::Shared, now);
    }
    return true;
}

bool
TierPipeline::lookup(TraceId id, TimeUs now)
{
    ++stats_.lookups;
    if (!multiTier_) {
        // Single tier: the local cache is its own residency index.
        LocalCache &cache = *tierPtrs_[0];
        if (cache.find(id) == nullptr) {
            if (sharedStore_ != nullptr && sharedProbe(id, now)) {
                return true;
            }
            ++stats_.misses;
            if (listener_ != nullptr && listener_->wantsMisses()) {
                listener_->onMiss(id, now);
            }
            return false;
        }
        ++stats_.hits;
        ++tierStats_[0].hits;
        if (cache.observesTouch()) {
            cache.touch(id, now);
        }
        if (listener_ != nullptr && listener_->wantsHits()) {
            listener_->onHit(id, labels_[0], now);
        }
        return true;
    }

    const TierId *found = where_.find(id);
    if (found == nullptr) {
        if (sharedStore_ != nullptr && sharedProbe(id, now)) {
            return true;
        }
        ++stats_.misses;
        if (listener_ != nullptr && listener_->wantsMisses()) {
            listener_->onMiss(id, now);
        }
        return false;
    }

    TierId tier = *found;
    LocalCache &cache = *tierPtrs_[tier];
    Fragment *frag = cache.find(id);
    if (frag == nullptr) {
        GENCACHE_PANIC("trace {} indexed in {} but not resident", id,
                       generationName(labels_[tier]));
    }
    ++stats_.hits;
    ++tierStats_[tier].hits;
    if (cache.observesTouch()) {
        cache.touch(id, now);
    }
    if (listener_ != nullptr && listener_->wantsHits()) {
        listener_->onHit(id, labels_[tier], now);
    }

    if ((hitObserverMask_ >> tier & 1u) != 0 &&
        edgePtrs_[tier]->onHit(*frag, now)) {
        // Eager upgrade (§5.3): the hit itself moves the fragment up.
        Fragment moving = *frag;
        cache.remove(id);
        where_.erase(id);
        syncFastSlot(moving);
        advance(tier, moving, now);
    }
    return true;
}

bool
TierPipeline::enableFastReplay(std::uint64_t id_bound)
{
    if (usedBytes_ != 0 || stats_.inserts != 0) {
        GENCACHE_PANIC("enableFastReplay on a non-empty pipeline");
    }
    if (sharedStore_ != nullptr) {
        // The sidecar serves misses without reaching lookup(), which
        // would silently skip every shared probe.
        return false;
    }
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
        if (tierPtrs_[i]->observesTouch()) {
            return false;
        }
    }
    std::uint16_t mask = 0;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (!edges_[i]->observesHits()) {
            continue;
        }
        const auto *threshold =
            dynamic_cast<const ThresholdPolicy *>(edges_[i].get());
        if (threshold == nullptr || threshold->eager()) {
            return false;
        }
        mask |= static_cast<std::uint16_t>(1u << (i + 1));
    }
    if (listener_ != nullptr &&
        (listener_->wantsHits() || listener_->wantsMisses())) {
        return false;
    }
    hot_.assign(id_bound, HotSlot{});
    countMask_ = mask;
    return true;
}

void
TierPipeline::flushFastCounts()
{
    for (std::size_t id = 0; id < hot_.size(); ++id) {
        HotSlot &slot = hot_[id];
        if (slot.delta == 0) {
            continue;
        }
        Fragment *frag =
            tierPtrs_[slot.tierPlusOne - 1]->find(id);
        if (frag == nullptr) {
            GENCACHE_PANIC("fast-replay slot for trace {} points at "
                           "{} but the trace is not resident", id,
                           generationName(
                               labels_[slot.tierPlusOne - 1]));
        }
        frag->accessCount += slot.delta;
        slot.delta = 0;
    }
}

bool
TierPipeline::insert(TraceId id, std::uint32_t size_bytes,
                     ModuleId module, TimeUs now)
{
    LocalCache &first = *tierPtrs_[0];
    if (multiTier_ ? where_.contains(id) : first.find(id) != nullptr) {
        GENCACHE_PANIC("insert of resident trace {}", id);
    }
    Fragment frag;
    frag.id = id;
    frag.sizeBytes = size_bytes;
    frag.module = module;
    frag.insertTime = now;
    if ((entryTrackerMask_ & 1u) != 0) {
        edgePtrs_[0]->onEnter(frag, now);
    }

    std::vector<Fragment> &evicted = evictScratch_[0];
    evicted.clear();
    if (!first.insert(frag, evicted)) {
        ++stats_.placementFailures;
        return false;
    }
    ++stats_.inserts;
    stats_.insertedBytes += size_bytes;
    usedBytes_ += size_bytes;

    if (!multiTier_) {
        // Single-tier (unified) event order: capacity victims are
        // reported before the insert, and the insert event carries
        // the in-cache fragment (with its placement address).
        for (Fragment &victim : evicted) {
            destroy(victim, TierId{0}, EvictReason::Capacity, now);
        }
        setFastSlot(id, TierId{0});
        if (listener_ != nullptr) {
            listener_->onInsert(*first.find(id), labels_[0], now);
        }
        return true;
    }

    where_.insert(id, TierId{0});
    setFastSlot(id, TierId{0});
    if (listener_ != nullptr) {
        listener_->onInsert(frag, labels_[0], now);
    }
    for (Fragment &victim : evicted) {
        cascadeVictim(TierId{0}, victim, now);
    }
    return true;
}

void
TierPipeline::cascadeVictim(TierId tier, Fragment victim, TimeUs now)
{
    syncFastSlot(victim);
    if (!hasEdgeOut(tier)) {
        // Last-tier victims are deleted.
        destroy(victim, tier, EvictReason::Capacity, now);
        return;
    }
    if (edgePtrs_[tier]->admitOnEviction(victim, now)) {
        advance(tier, victim, now);
    } else {
        // Figure 8: the victim leaves without earning promotion.
        ++stats_.probationRejections;
        destroy(victim, tier, EvictReason::Rejected, now);
    }
}

void
TierPipeline::advance(TierId from, Fragment frag, TimeUs now)
{
    TierId to = from + 1;
    frag.insertTime = now;
    if (specs_[from].pins == PinHandling::Shed) {
        frag.pinned = false;
    }
    if ((entryTrackerMask_ >> to & 1u) != 0) {
        edgePtrs_[to]->onEnter(frag, now);
    }

    std::vector<Fragment> &evicted = evictScratch_[to];
    evicted.clear();
    if (!tierPtrs_[to]->insert(frag, evicted)) {
        ++stats_.placementFailures;
        destroy(frag, from, EvictReason::Capacity, now);
        return;
    }
    where_.set(frag.id, to);
    setFastSlot(frag.id, to);
    ++stats_.promotions;
    stats_.promotedBytes += frag.sizeBytes;
    ++tierStats_[from].promotionsOut;
    ++tierStats_[to].promotionsIn;
    if (listener_ != nullptr) {
        listener_->onEvict(frag, labels_[from],
                           EvictReason::PromotionMove, now);
        listener_->onPromote(frag, labels_[from], labels_[to], now);
    }
    for (Fragment &victim : evicted) {
        cascadeVictim(to, victim, now);
    }
}

void
TierPipeline::destroy(const Fragment &frag, TierId tier,
                      EvictReason reason, TimeUs now)
{
    // A last-tier capacity victim earned its way through every
    // promotion filter; with a shared tier mounted that is exactly
    // the promotion into shared memory. Anonymous code (no module
    // uid in the canonical id) stays private, and Rejected/Unmap
    // victims never publish — they were filtered out or their module
    // is going away.
    if (sharedStore_ != nullptr && reason == EvictReason::Capacity &&
        tier + 1u == tiers_.size() &&
        traceIdUid(sharedKeyOf(frag.id)) != kNoModuleUid) {
        ++sharedStats_.publishes;
        switch (sharedStore_->publish(sharedKeyOf(frag.id),
                                      frag.sizeBytes,
                                      sharedProcess_)) {
          case SharedCodeStore::PublishResult::Inserted:
            ++sharedStats_.publishedInserts;
            break;
          case SharedCodeStore::PublishResult::Attached:
            ++sharedStats_.publishedAttaches;
            break;
          case SharedCodeStore::PublishResult::AlreadyAttached:
            ++sharedStats_.publishedDuplicates;
            break;
          case SharedCodeStore::PublishResult::Rejected:
            ++sharedStats_.publishedRejects;
            break;
        }
    }
    if (multiTier_) {
        where_.erase(frag.id);
    }
    clearFastSlot(frag.id);
    ++stats_.deletions;
    stats_.deletedBytes += frag.sizeBytes;
    usedBytes_ -= frag.sizeBytes;
    ++tierStats_[tier].deletions;
    if (listener_ != nullptr) {
        listener_->onEvict(frag, labels_[tier], reason, now);
    }
}

void
TierPipeline::invalidateModule(ModuleId module, TimeUs now)
{
    std::vector<Fragment> removed;
    for (std::size_t tier = 0; tier < tiers_.size(); ++tier) {
        removed.clear();
        tiers_[tier]->removeModule(module, removed);
        for (Fragment &frag : removed) {
            if (multiTier_) {
                where_.erase(frag.id);
            }
            syncFastSlot(frag);
            ++stats_.unmapDeletions;
            stats_.unmapDeletedBytes += frag.sizeBytes;
            usedBytes_ -= frag.sizeBytes;
            ++tierStats_[tier].deletions;
            if (listener_ != nullptr) {
                listener_->onEvict(frag, labels_[tier],
                                   EvictReason::Unmap, now);
            }
        }
    }
    // Completion marker: every Unmap eviction of this module has been
    // delivered (temporal checkers key unload completeness on it).
    if (listener_ != nullptr) {
        listener_->onModuleUnload(module, now);
    }
    // Cross-process completeness: this process unmapping the module
    // invalidates its traces for the whole fleet (conservative — any
    // other process still running the DLL will republish on its next
    // last-tier eviction of the remapped image).
    if (sharedStore_ != nullptr) {
        auto uid = sharedModuleUids_.find(module);
        if (uid != sharedModuleUids_.end()) {
            sharedStore_->invalidateModule(uid->second);
            ++sharedStats_.invalidationsForwarded;
        }
    }
}

void
TierPipeline::mountSharedStore(SharedCodeStore *store, unsigned process)
{
    if (store == nullptr) {
        GENCACHE_PANIC("mountSharedStore(nullptr)");
    }
    if (sharedStore_ != nullptr) {
        GENCACHE_PANIC("pipeline {} already mounts a shared store",
                       name_);
    }
    if (usedBytes_ != 0 || stats_.inserts != 0) {
        GENCACHE_PANIC("mountSharedStore on a non-empty pipeline");
    }
    if (fastReplayEnabled()) {
        // The sidecar's miss path never reaches lookup(), so a fast
        // pipeline would silently skip every shared probe.
        GENCACHE_PANIC("mountSharedStore is incompatible with the "
                       "fast-replay sidecar");
    }
    if (process >= store->processLimit()) {
        fatal("process index {} exceeds shared-store limit {}",
              process, store->processLimit());
    }
    sharedStore_ = store;
    sharedProcess_ = process;
}

void
TierPipeline::setSharedModuleUid(ModuleId module, ModuleUid uid)
{
    if (uid == kNoModuleUid) {
        sharedModuleUids_.erase(module);
        return;
    }
    sharedModuleUids_[module] = uid;
}

bool
TierPipeline::setPinned(TraceId id, bool pinned)
{
    if (!multiTier_) {
        return tierPtrs_[0]->setPinned(id, pinned);
    }
    const TierId *found = where_.find(id);
    if (found == nullptr) {
        return false;
    }
    return tierPtrs_[*found]->setPinned(id, pinned);
}

bool
TierPipeline::contains(TraceId id) const
{
    if (!multiTier_) {
        return tierPtrs_[0]->contains(id);
    }
    return where_.contains(id);
}

void
TierPipeline::prepareDenseIds(std::uint64_t id_bound)
{
    if (multiTier_) {
        where_.reserveDense(id_bound);
    }
    for (auto &tier : tiers_) {
        tier->reserveDenseIds(id_bound);
    }
}

std::uint64_t
TierPipeline::totalCapacity() const
{
    std::uint64_t total = 0;
    for (const auto &tier : tiers_) {
        total += tier->capacity();
    }
    return total;
}

std::uint64_t
TierPipeline::usedBytes() const
{
    // Maintained incrementally (+insert, -destroy/-unmap; promotions
    // net zero) so replay peak tracking is O(1) per observation.
    return usedBytes_;
}

std::size_t
TierPipeline::tierOf(TraceId id) const
{
    if (!multiTier_) {
        if (!tierPtrs_[0]->contains(id)) {
            GENCACHE_PANIC("tierOf: trace {} not resident", id);
        }
        return 0;
    }
    const TierId *found = where_.find(id);
    if (found == nullptr) {
        GENCACHE_PANIC("tierOf: trace {} not resident", id);
    }
    return *found;
}

void
TierPipeline::validate() const
{
    std::uint64_t summed = 0;
    for (const auto &tier : tiers_) {
        summed += tier->usedBytes();
    }
    if (summed != usedBytes_) {
        GENCACHE_PANIC("incremental usedBytes {} but tiers hold {}",
                       usedBytes_, summed);
    }
    if (!hot_.empty()) {
        std::size_t occupied = 0;
        for (const HotSlot &slot : hot_) {
            occupied += slot.tierPlusOne != 0 ? 1 : 0;
        }
        std::size_t resident = 0;
        for (std::size_t tier = 0; tier < tiers_.size(); ++tier) {
            resident += tiers_[tier]->fragmentCount();
            tiers_[tier]->forEach([&](const Fragment &frag) {
                if (frag.id >= hot_.size() ||
                    hot_[frag.id].tierPlusOne != tier + 1) {
                    GENCACHE_PANIC(
                        "fast-replay slot disagrees with residency "
                        "for trace {} in {}", frag.id,
                        generationName(labels_[tier]));
                }
            });
        }
        if (occupied != resident) {
            GENCACHE_PANIC("fast-replay sidecar tracks {} traces but "
                           "caches hold {}", occupied, resident);
        }
    }
    if (!multiTier_) {
        if (where_.size() != 0) {
            GENCACHE_PANIC("single-tier pipeline carries a residency "
                           "index ({} entries)", where_.size());
        }
        return;
    }
    std::size_t resident = 0;
    for (std::size_t tier = 0; tier < tiers_.size(); ++tier) {
        const LocalCache &cache = *tiers_[tier];
        resident += cache.fragmentCount();
        cache.forEach([&](const Fragment &frag) {
            const TierId *found = where_.find(frag.id);
            if (found == nullptr || *found != tier) {
                GENCACHE_PANIC("trace {} resident in {} but indexed "
                               "elsewhere", frag.id,
                               generationName(labels_[tier]));
            }
        });
    }
    if (resident != where_.size()) {
        GENCACHE_PANIC("index holds {} traces but caches hold {}",
                       where_.size(), resident);
    }
}

// --- topology catalog ---

std::unique_ptr<PromotionPolicy>
EdgeSpec::make() const
{
    switch (rule) {
      case Rule::AlwaysPromote:
        return std::make_unique<AlwaysPromotePolicy>();
      case Rule::AlwaysDelete:
        return std::make_unique<AlwaysDeletePolicy>();
      case Rule::Threshold:
        return std::make_unique<ThresholdPolicy>(threshold, eager);
      case Rule::Temperature:
        return std::make_unique<TemperaturePolicy>(threshold,
                                                   halfLifeUs, eager);
    }
    GENCACHE_PANIC("unknown edge rule {}", static_cast<int>(rule));
}

std::vector<TierSpec>
TierTopology::tierSpecs(std::uint64_t total_bytes) const
{
    if (fractions.empty()) {
        fatal("topology {} has no tiers", name);
    }
    if (edges.size() != fractions.size() - 1) {
        fatal("topology {} needs {} edges (got {})", name,
              fractions.size() - 1, edges.size());
    }
    if (total_bytes < fractions.size()) {
        fatal("topology {}: {} bytes cannot hold {} tiers", name,
              total_bytes, fractions.size());
    }
    std::vector<TierSpec> specs(fractions.size());
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i + 1 < fractions.size(); ++i) {
        if (fractions[i] <= 0.0) {
            fatal("topology {}: tier {} fraction must be positive",
                  name, i);
        }
        std::uint64_t bytes = static_cast<std::uint64_t>(std::llround(
            static_cast<double>(total_bytes) * fractions[i]));
        if (bytes == 0) {
            bytes = 1;
        }
        specs[i] = TierSpec{bytes, policy, pins};
        assigned += bytes;
    }
    if (fractions.back() <= 0.0) {
        fatal("topology {}: tier {} fraction must be positive", name,
              fractions.size() - 1);
    }
    if (assigned >= total_bytes) {
        fatal("topology {}: fractions leave no space for the last "
              "tier", name);
    }
    // The last tier absorbs the rounding remainder so the pipeline's
    // capacity is exactly the requested budget.
    specs.back() = TierSpec{total_bytes - assigned, policy, pins};
    return specs;
}

std::unique_ptr<TierPipeline>
TierTopology::build(std::uint64_t total_bytes) const
{
    TierPipelineInit init;
    init.name = format("{} ({})", name, humanBytes(total_bytes));
    init.tiers = tierSpecs(total_bytes);
    init.edges.reserve(edges.size());
    for (const EdgeSpec &edge : edges) {
        init.edges.push_back(edge.make());
    }
    return std::make_unique<TierPipeline>(std::move(init));
}

const std::vector<TierTopology> &
namedTierTopologies()
{
    static const std::vector<TierTopology> catalog = [] {
        std::vector<TierTopology> entries;

        // Two tiers, no victim filter: the nursery's evictees must
        // have been hit once to earn a persistent slot.
        TierTopology two;
        two.name = "2tier";
        two.fractions = {0.50, 0.50};
        two.edges = {EdgeSpec{EdgeSpec::Rule::Threshold, 1, false, 0}};
        entries.push_back(std::move(two));

        // Four tiers: a deeper probation path with a rising
        // threshold, so traces must prove themselves twice before
        // reaching the persistent cache.
        TierTopology four;
        four.name = "4tier";
        four.fractions = {0.40, 0.15, 0.15, 0.30};
        four.edges = {
            EdgeSpec{EdgeSpec::Rule::AlwaysPromote, 1, false, 0},
            EdgeSpec{EdgeSpec::Rule::Threshold, 1, false, 0},
            EdgeSpec{EdgeSpec::Rule::Threshold, 2, false, 0},
        };
        entries.push_back(std::move(four));

        // The paper's 45/10/45 shape with a TRRIP-style temperature
        // filter on the probation edge: two *recent* hits promote,
        // with a 250 ms half-life cooling old activity.
        TierTopology temp;
        temp.name = "temp3";
        temp.fractions = {0.45, 0.10, 0.45};
        temp.edges = {
            EdgeSpec{EdgeSpec::Rule::AlwaysPromote, 1, false, 0},
            EdgeSpec{EdgeSpec::Rule::Temperature, 2, false, 250'000},
        };
        entries.push_back(std::move(temp));

        return entries;
    }();
    return catalog;
}

const TierTopology *
findTierTopology(std::string_view name)
{
    for (const TierTopology &topology : namedTierTopologies()) {
        if (topology.name == name) {
            return &topology;
        }
    }
    return nullptr;
}

} // namespace gencache::cache
