#include "codecache/shared_store.h"

#include <bit>

#include "support/logging.h"

namespace gencache::cache {

SharedCodeStore::SharedCodeStore(SharedStoreConfig config)
    : config_(config)
{
    if (config_.shards == 0) {
        fatal("shared store needs at least one shard");
    }
    if (config_.processLimit == 0 || config_.processLimit > 64) {
        fatal("shared store process limit {} outside 1..64",
              config_.processLimit);
    }
    if (config_.capacityBytes < config_.shards) {
        fatal("shared store capacity {} B cannot cover {} shards",
              config_.capacityBytes, config_.shards);
    }
    shardCapacity_ = config_.capacityBytes / config_.shards;
    shards_.resize(config_.shards);
}

void
SharedCodeStore::lockShard(const Shard &shard) const
    GENCACHE_NO_THREAD_SAFETY_ANALYSIS
{
    // try_lock first purely to observe contention; the analysis can't
    // follow the two-step acquire, hence the local opt-out (the
    // GENCACHE_ACQUIRE contract in the header still holds on return).
    if (shard.mutex.try_lock()) {
        return;
    }
    lockContentions_.fetch_add(1, std::memory_order_relaxed);
    shard.mutex.lock();
}

bool
SharedCodeStore::attachLocked(Shard &shard, Entry &entry,
                              unsigned process)
{
    std::uint64_t bit = 1ull << process;
    if ((entry.attachedMask & bit) != 0) {
        return false;
    }
    entry.attachedMask |= bit;
    entry.attachCount += 1;
    shard.claimedBytes += entry.sizeBytes;
    if (shard.claimedBytes > shard.peakClaimedBytes) {
        shard.peakClaimedBytes = shard.claimedBytes;
    }
    shard.stats.attaches += 1;
    return true;
}

bool
SharedCodeStore::probe(TraceId key, unsigned process)
{
    if (process >= config_.processLimit) {
        GENCACHE_PANIC("process index {} exceeds shared-store limit {}",
                       process, config_.processLimit);
    }
    Shard &shard = shardFor(key);
    lockShard(shard);
    shard.stats.probes += 1;
    auto it = shard.entries.find(key);
    bool hit = it != shard.entries.end();
    if (hit) {
        shard.stats.probeHits += 1;
        attachLocked(shard, it->second, process);
    }
    shard.mutex.unlock();
    return hit;
}

SharedCodeStore::PublishResult
SharedCodeStore::publish(TraceId key, std::uint32_t size_bytes,
                         unsigned process)
{
    if (process >= config_.processLimit) {
        GENCACHE_PANIC("process index {} exceeds shared-store limit {}",
                       process, config_.processLimit);
    }
    if (key == kInvalidTrace) {
        GENCACHE_PANIC("cannot publish the invalid trace id");
    }
    Shard &shard = shardFor(key);
    lockShard(shard);
    shard.stats.publishes += 1;

    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        // Deduplicated: another copy of the same canonical trace is
        // already resident; the publisher just attaches to it.
        bool fresh = attachLocked(shard, it->second, process);
        if (!fresh) {
            shard.stats.duplicatePublishes += 1;
        }
        shard.mutex.unlock();
        return fresh ? PublishResult::Attached
                     : PublishResult::AlreadyAttached;
    }

    if (size_bytes > shardCapacity_) {
        shard.stats.rejectedPublishes += 1;
        shard.mutex.unlock();
        return PublishResult::Rejected;
    }

    // FIFO-evict until the new entry fits its shard's budget.
    while (shard.usedBytes + size_bytes > shardCapacity_) {
        TraceId victim = shard.fifo.front();
        shard.fifo.pop_front();
        auto vit = shard.entries.find(victim);
        if (vit == shard.entries.end()) {
            GENCACHE_PANIC("shared-store FIFO names missing entry {}",
                           victim);
        }
        shard.usedBytes -= vit->second.sizeBytes;
        shard.claimedBytes -= static_cast<std::uint64_t>(
                                  vit->second.sizeBytes) *
                              vit->second.attachCount;
        shard.stats.capacityEvictions += 1;
        shard.stats.capacityEvictedBytes += vit->second.sizeBytes;
        shard.entries.erase(vit);
    }

    Entry entry;
    entry.key = key;
    entry.sizeBytes = size_bytes;
    entry.insertTick = tick_.fetch_add(1, std::memory_order_relaxed);
    shard.entries.emplace(key, entry);
    shard.fifo.push_back(key);
    shard.usedBytes += size_bytes;
    if (shard.usedBytes > shard.peakUsedBytes) {
        shard.peakUsedBytes = shard.usedBytes;
    }
    shard.stats.inserts += 1;
    attachLocked(shard, shard.entries.at(key), process);
    shard.mutex.unlock();
    return PublishResult::Inserted;
}

void
SharedCodeStore::invalidateModule(ModuleUid uid)
{
    // Stamp the invalidation *before* sweeping: any entry inserted
    // after this tick raced past the unmap and is legitimately newer
    // (a republish of the remapped image).
    std::uint64_t stamp =
        tick_.fetch_add(1, std::memory_order_relaxed);
    invalidationCalls_.fetch_add(1, std::memory_order_relaxed);
    {
        MutexLock lock(invalidationMutex_);
        lastInvalidation_[uid] = stamp;
    }
    for (Shard &shard : shards_) {
        lockShard(shard);
        for (auto it = shard.entries.begin();
             it != shard.entries.end();) {
            if (traceIdUid(it->first) != uid) {
                ++it;
                continue;
            }
            shard.usedBytes -= it->second.sizeBytes;
            shard.claimedBytes -= static_cast<std::uint64_t>(
                                      it->second.sizeBytes) *
                                  it->second.attachCount;
            shard.stats.unmapEvictions += 1;
            shard.stats.unmapEvictedBytes += it->second.sizeBytes;
            it = shard.entries.erase(it);
        }
        std::erase_if(shard.fifo, [&](TraceId id) {
            return traceIdUid(id) == uid;
        });
        shard.mutex.unlock();
    }
}

bool
SharedCodeStore::contains(TraceId key) const
{
    const Shard &shard = shardFor(key);
    lockShard(shard);
    bool hit = shard.entries.count(key) != 0;
    shard.mutex.unlock();
    return hit;
}

bool
SharedCodeStore::containsModule(ModuleUid uid) const
{
    for (const Shard &shard : shards_) {
        lockShard(shard);
        bool found = false;
        for (const auto &[key, entry] : shard.entries) {
            if (traceIdUid(key) == uid) {
                found = true;
                break;
            }
        }
        shard.mutex.unlock();
        if (found) {
            return true;
        }
    }
    return false;
}

std::uint64_t
SharedCodeStore::usedBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        lockShard(shard);
        total += shard.usedBytes;
        shard.mutex.unlock();
    }
    return total;
}

std::uint64_t
SharedCodeStore::peakUsedBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        lockShard(shard);
        total += shard.peakUsedBytes;
        shard.mutex.unlock();
    }
    return total;
}

std::uint64_t
SharedCodeStore::claimedBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        lockShard(shard);
        total += shard.claimedBytes;
        shard.mutex.unlock();
    }
    return total;
}

std::uint64_t
SharedCodeStore::peakClaimedBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        lockShard(shard);
        total += shard.peakClaimedBytes;
        shard.mutex.unlock();
    }
    return total;
}

std::size_t
SharedCodeStore::entryCount() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        lockShard(shard);
        total += shard.entries.size();
        shard.mutex.unlock();
    }
    return total;
}

SharedStoreStats
SharedCodeStore::stats() const
{
    SharedStoreStats out;
    for (const Shard &shard : shards_) {
        lockShard(shard);
        out.probes += shard.stats.probes;
        out.probeHits += shard.stats.probeHits;
        out.publishes += shard.stats.publishes;
        out.inserts += shard.stats.inserts;
        out.attaches += shard.stats.attaches;
        out.duplicatePublishes += shard.stats.duplicatePublishes;
        out.rejectedPublishes += shard.stats.rejectedPublishes;
        out.capacityEvictions += shard.stats.capacityEvictions;
        out.capacityEvictedBytes += shard.stats.capacityEvictedBytes;
        out.unmapEvictions += shard.stats.unmapEvictions;
        out.unmapEvictedBytes += shard.stats.unmapEvictedBytes;
        shard.mutex.unlock();
    }
    out.invalidations =
        invalidationCalls_.load(std::memory_order_relaxed);
    out.lockContentions =
        lockContentions_.load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
SharedCodeStore::lastInvalidationTick(ModuleUid uid) const
{
    MutexLock lock(invalidationMutex_);
    auto it = lastInvalidation_.find(uid);
    return it == lastInvalidation_.end() ? 0 : it->second;
}

void
SharedCodeStore::forEachEntry(
    const std::function<void(unsigned, const Entry &)> &fn) const
{
    for (unsigned s = 0; s < shardCount(); ++s) {
        const Shard &shard = shards_[s];
        lockShard(shard);
        for (const auto &[key, entry] : shard.entries) {
            fn(s, entry);
        }
        shard.mutex.unlock();
    }
}

void
SharedCodeStore::validate() const
{
    for (unsigned s = 0; s < shardCount(); ++s) {
        const Shard &shard = shards_[s];
        lockShard(shard);
        std::uint64_t used = 0;
        std::uint64_t claimed = 0;
        for (const auto &[key, entry] : shard.entries) {
            if (shardOf(key, shardCount()) != s) {
                GENCACHE_PANIC(
                    "entry {} resident in shard {} but owned by {}",
                    key, s, shardOf(key, shardCount()));
            }
            if (entry.key != key) {
                GENCACHE_PANIC("entry keyed {} carries key {}", key,
                               entry.key);
            }
            if (static_cast<unsigned>(
                    std::popcount(entry.attachedMask)) !=
                entry.attachCount) {
                GENCACHE_PANIC(
                    "entry {} attach count {} disagrees with mask",
                    key, entry.attachCount);
            }
            if (entry.attachCount == 0) {
                GENCACHE_PANIC("entry {} resident with no attached "
                               "process",
                               key);
            }
            used += entry.sizeBytes;
            claimed += static_cast<std::uint64_t>(entry.sizeBytes) *
                       entry.attachCount;
        }
        if (used != shard.usedBytes || claimed != shard.claimedBytes) {
            GENCACHE_PANIC(
                "shard {} byte accounting drifted ({} used vs {}, {} "
                "claimed vs {})",
                s, shard.usedBytes, used, shard.claimedBytes, claimed);
        }
        if (used > shardCapacity_) {
            GENCACHE_PANIC("shard {} over budget: {} of {} bytes", s,
                           used, shardCapacity_);
        }
        if (shard.fifo.size() != shard.entries.size()) {
            GENCACHE_PANIC(
                "shard {} FIFO tracks {} entries but map holds {}", s,
                shard.fifo.size(), shard.entries.size());
        }
        for (TraceId id : shard.fifo) {
            if (shard.entries.count(id) == 0) {
                GENCACHE_PANIC(
                    "shard {} FIFO names non-resident entry {}", s,
                    id);
            }
        }
        shard.mutex.unlock();
    }
}

const char *
publishResultName(SharedCodeStore::PublishResult result)
{
    switch (result) {
    case SharedCodeStore::PublishResult::Inserted:
        return "inserted";
    case SharedCodeStore::PublishResult::Attached:
        return "attached";
    case SharedCodeStore::PublishResult::AlreadyAttached:
        return "already-attached";
    case SharedCodeStore::PublishResult::Rejected:
        return "rejected";
    }
    return "?";
}

} // namespace gencache::cache
