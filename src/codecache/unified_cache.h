/**
 * @file
 * The baseline global scheme: one unified trace cache (paper §6's
 * comparison baseline, sized at half the benchmark's maximum cache).
 */

#ifndef GENCACHE_CODECACHE_UNIFIED_CACHE_H
#define GENCACHE_CODECACHE_UNIFIED_CACHE_H

#include <memory>

#include "codecache/cache_manager.h"

namespace gencache::cache {

/** A single local cache behind the CacheManager interface. */
class UnifiedCacheManager : public CacheManager
{
  public:
    /**
     * @param capacity cache size in bytes (0 = unbounded).
     * @param policy local replacement policy; Unbounded is implied
     *        when capacity is 0.
     */
    explicit UnifiedCacheManager(
        std::uint64_t capacity,
        LocalPolicy policy = LocalPolicy::PseudoCircular);

    std::string name() const override;
    bool lookup(TraceId id, TimeUs now) override;
    bool insert(TraceId id, std::uint32_t size_bytes, ModuleId module,
                TimeUs now) override;
    void invalidateModule(ModuleId module, TimeUs now) override;
    bool setPinned(TraceId id, bool pinned) override;
    bool contains(TraceId id) const override;
    std::uint64_t totalCapacity() const override;
    std::uint64_t usedBytes() const override;
    void prepareDenseIds(std::uint64_t id_bound) override
    {
        cache_->reserveDenseIds(id_bound);
    }

    /** The underlying local cache (stats, tests). */
    const LocalCache &local() const { return *cache_; }

    /** Peak occupancy; meaningful for the unbounded configuration. */
    std::uint64_t peakBytes() const;

  private:
    std::unique_ptr<LocalCache> cache_;
    LocalPolicy policy_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_UNIFIED_CACHE_H
