/**
 * @file
 * The baseline global scheme: one unified trace cache (paper §6's
 * comparison baseline, sized at half the benchmark's maximum cache).
 *
 * Since the tier-pipeline refactor this is a single-tier TierPipeline
 * adapter; stats and event streams are bit-identical to the
 * pre-pipeline implementation (tests/test_tier_pipeline.cc).
 */

#ifndef GENCACHE_CODECACHE_UNIFIED_CACHE_H
#define GENCACHE_CODECACHE_UNIFIED_CACHE_H

#include "codecache/tier_pipeline.h"

namespace gencache::cache {

/** A single local cache behind the CacheManager interface. */
class UnifiedCacheManager : public TierPipeline
{
  public:
    /**
     * @param capacity cache size in bytes (0 = unbounded).
     * @param policy local replacement policy; Unbounded is implied
     *        when capacity is 0.
     */
    explicit UnifiedCacheManager(
        std::uint64_t capacity,
        LocalPolicy policy = LocalPolicy::PseudoCircular);

    /** The underlying local cache (stats, tests). */
    const LocalCache &local() const { return tierCache(0); }

    /** Peak occupancy; meaningful for the unbounded configuration. */
    std::uint64_t peakBytes() const;

    /** Effective local policy (Unbounded when capacity was 0). */
    LocalPolicy policy() const { return policy_; }

  private:
    LocalPolicy policy_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_UNIFIED_CACHE_H
