#include "codecache/fragment.h"

#include "support/logging.h"

namespace gencache::cache {

const char *
generationName(Generation gen)
{
    switch (gen) {
      case Generation::Unified: return "unified";
      case Generation::Nursery: return "nursery";
      case Generation::Probation: return "probation";
      case Generation::Persistent: return "persistent";
      case Generation::Tier1: return "tier1";
      case Generation::Tier2: return "tier2";
      case Generation::Tier3: return "tier3";
      case Generation::Tier4: return "tier4";
      case Generation::Tier5: return "tier5";
      case Generation::Tier6: return "tier6";
      case Generation::Shared: return "shared";
    }
    GENCACHE_PANIC("unknown generation {}", static_cast<int>(gen));
}

const char *
evictReasonName(EvictReason reason)
{
    switch (reason) {
      case EvictReason::Capacity: return "capacity";
      case EvictReason::Unmap: return "unmap";
      case EvictReason::Flush: return "flush";
      case EvictReason::PromotionMove: return "promotion-move";
      case EvictReason::Rejected: return "rejected";
    }
    GENCACHE_PANIC("unknown evict reason {}", static_cast<int>(reason));
}

bool
isDeletion(EvictReason reason)
{
    return reason != EvictReason::PromotionMove;
}

} // namespace gencache::cache
