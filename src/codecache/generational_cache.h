/**
 * @file
 * Generational code cache management (paper §5, Figures 7 and 8).
 *
 * Three separately managed caches per thread:
 *
 *   nursery    — every newly generated trace is inserted here.
 *   probation  — victim filter: nursery evictees land here; hits while
 *                on probation increment an access counter.
 *   persistent — long-lived traces; probation evictees whose access
 *                count reached the promotion threshold move here,
 *                everything else is deleted.
 *
 * Since the tier-pipeline refactor this manager is a thin adapter: it
 * maps a GenerationalConfig onto a 3-tier TierPipeline with an
 * always-promote edge (nursery -> probation) and a threshold edge
 * (probation -> persistent). Figure 8's cascade, the residency index,
 * and all event emission live in TierPipeline; stats and event
 * streams are bit-identical to the pre-pipeline monolith
 * (tests/test_tier_pipeline.cc).
 *
 * §5.3's eager variant — reaching the threshold on a probation *hit*
 * immediately triggers the upgrade — is the threshold edge's eager
 * flag.
 */

#ifndef GENCACHE_CODECACHE_GENERATIONAL_CACHE_H
#define GENCACHE_CODECACHE_GENERATIONAL_CACHE_H

#include "codecache/tier_pipeline.h"

namespace gencache::cache {

/** Sizing and policy knobs of the generational hierarchy. */
struct GenerationalConfig
{
    std::uint64_t nurseryBytes = 0;
    std::uint64_t probationBytes = 0;
    std::uint64_t persistentBytes = 0;

    /** Probation access count required for promotion (>= 1). */
    std::uint32_t promotionThreshold = 1;

    /** When true, a probation hit that reaches the threshold promotes
     *  immediately (§5.3's counter-free single-hit policy uses
     *  threshold 1 with this enabled). */
    bool eagerPromotion = false;

    /** Local replacement policy of all three caches. */
    LocalPolicy policy = LocalPolicy::PseudoCircular;

    std::uint64_t totalBytes() const
    {
        return nurseryBytes + probationBytes + persistentBytes;
    }

    /**
     * Split @p total bytes by percentage, e.g. 45/10/45. The nursery
     * and probation parts round to the nearest byte (but never below
     * one byte when @p total is positive); the persistent cache
     * absorbs the remainder so the parts sum exactly to @p total.
     */
    static GenerationalConfig fromProportions(
        std::uint64_t total, double nursery_frac, double probation_frac,
        std::uint32_t threshold, bool eager = false,
        LocalPolicy policy = LocalPolicy::PseudoCircular);
};

/** The paper's proposed global management scheme. */
class GenerationalCacheManager : public TierPipeline
{
  public:
    explicit GenerationalCacheManager(const GenerationalConfig &config);

    const GenerationalConfig &config() const { return config_; }

    /** Which cache currently holds @p id; panics when absent. */
    Generation generationOf(TraceId id) const
    {
        return tierLabel(tierOf(id));
    }

    const LocalCache &localCache(Generation gen) const
    {
        return tierCache(tierIndexOf(gen));
    }

    const GenerationStats &generationStats(Generation gen) const
    {
        return tierStats(tierIndexOf(gen));
    }

  private:
    std::size_t tierIndexOf(Generation gen) const;

    GenerationalConfig config_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_GENERATIONAL_CACHE_H
