/**
 * @file
 * Generational code cache management (paper §5, Figures 7 and 8).
 *
 * Three separately managed caches per thread:
 *
 *   nursery    — every newly generated trace is inserted here.
 *   probation  — victim filter: nursery evictees land here; hits while
 *                on probation increment an access counter.
 *   persistent — long-lived traces; probation evictees whose access
 *                count reached the promotion threshold move here,
 *                everything else is deleted.
 *
 * Figure 8's insertNewTrace is realized as a cascade: inserting into
 * the nursery may evict victims, each of which is promoted into
 * probation; each probation victim is then either promoted to the
 * persistent cache or deleted; persistent victims are deleted.
 *
 * §5.3 also discusses an eager variant where reaching the threshold on
 * a probation *hit* immediately triggers the upgrade instead of
 * waiting for the probationary eviction; both variants are supported.
 */

#ifndef GENCACHE_CODECACHE_GENERATIONAL_CACHE_H
#define GENCACHE_CODECACHE_GENERATIONAL_CACHE_H

#include <memory>

#include "codecache/cache_manager.h"
#include "codecache/trace_index.h"

namespace gencache::cache {

/** Sizing and policy knobs of the generational hierarchy. */
struct GenerationalConfig
{
    std::uint64_t nurseryBytes = 0;
    std::uint64_t probationBytes = 0;
    std::uint64_t persistentBytes = 0;

    /** Probation access count required for promotion (>= 1). */
    std::uint32_t promotionThreshold = 1;

    /** When true, a probation hit that reaches the threshold promotes
     *  immediately (§5.3's counter-free single-hit policy uses
     *  threshold 1 with this enabled). */
    bool eagerPromotion = false;

    /** Local replacement policy of all three caches. */
    LocalPolicy policy = LocalPolicy::PseudoCircular;

    std::uint64_t totalBytes() const
    {
        return nurseryBytes + probationBytes + persistentBytes;
    }

    /**
     * Split @p total bytes by percentage, e.g. 45/10/45. Rounds the
     * persistent cache up so the parts sum exactly to @p total.
     */
    static GenerationalConfig fromProportions(
        std::uint64_t total, double nursery_frac, double probation_frac,
        std::uint32_t threshold, bool eager = false,
        LocalPolicy policy = LocalPolicy::PseudoCircular);
};

/** Per-generation counters beyond the local cache stats. */
struct GenerationStats
{
    std::uint64_t hits = 0;
    std::uint64_t promotionsIn = 0;   ///< fragments that moved in
    std::uint64_t promotionsOut = 0;  ///< fragments that moved up
    std::uint64_t deletions = 0;      ///< destroyed while resident here
};

/** The paper's proposed global management scheme. */
class GenerationalCacheManager : public CacheManager
{
  public:
    explicit GenerationalCacheManager(const GenerationalConfig &config);

    std::string name() const override;
    bool lookup(TraceId id, TimeUs now) override;
    bool insert(TraceId id, std::uint32_t size_bytes, ModuleId module,
                TimeUs now) override;
    void invalidateModule(ModuleId module, TimeUs now) override;
    bool setPinned(TraceId id, bool pinned) override;
    bool contains(TraceId id) const override;
    std::uint64_t totalCapacity() const override;
    std::uint64_t usedBytes() const override;
    void prepareDenseIds(std::uint64_t id_bound) override;

    const GenerationalConfig &config() const { return config_; }

    /** Which cache currently holds @p id; panics when absent. */
    Generation generationOf(TraceId id) const;

    const LocalCache &localCache(Generation gen) const;
    const GenerationStats &generationStats(Generation gen) const;

    /** Internal consistency check (test support): the index and the
     *  three local caches must agree. Panics on violation. */
    void validate() const;

    /** Trace -> generation residency index (introspection for the
     *  static checker, src/analysis). */
    const TraceIndex<Generation> &residencyIndex() const
    {
        return where_;
    }

  private:
    LocalCache &cacheOf(Generation gen);
    GenerationStats &statsOf(Generation gen);

    /** Insert @p frag into @p gen and cascade its victims downstream
     *  per Figure 8. @return false on placement failure. */
    bool insertInto(Generation gen, Fragment frag, TimeUs now);

    /** Handle a fragment evicted from @p gen for capacity. */
    void cascadeVictim(Generation gen, Fragment victim, TimeUs now);

    /** Destroy @p frag (it left the hierarchy). */
    void destroy(const Fragment &frag, Generation gen,
                 EvictReason reason, TimeUs now);

    /** Move a probation-resident fragment to the persistent cache. */
    void promoteToPersistent(Fragment frag, TimeUs now);

    GenerationalConfig config_;
    std::unique_ptr<LocalCache> nursery_;
    std::unique_ptr<LocalCache> probation_;
    std::unique_ptr<LocalCache> persistent_;
    GenerationStats nurseryStats_;
    GenerationStats probationStats_;
    GenerationStats persistentStats_;
    TraceIndex<Generation> where_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_GENERATIONAL_CACHE_H
