/**
 * @file
 * TraceIndex: the residency index shared by every cache layer.
 *
 * Maps TraceId -> a small value (generation, slot, offset). Two
 * backings behind one interface:
 *
 *  - *sparse* (default): an unordered_map, for live execution where
 *    trace identities are arbitrary 64-bit values;
 *  - *dense*: a flat vector plus a presence bitmap, for compiled-log
 *    replay where tracelog::CompiledLog has remapped every trace to a
 *    dense id in [0, traceCount). Point operations become two array
 *    reads with no hashing — the per-event win the batched replay
 *    pipeline is built on.
 *
 * Switching to dense storage (reserveDense) is only legal while the
 * index is empty: callers opt in through
 * CacheManager::prepareDenseIds before the first insert. The index is
 * never iterated on any behavioural path (only validate()/analysis
 * walk it), so the backing cannot change results — only speed.
 */

#ifndef GENCACHE_CODECACHE_TRACE_INDEX_H
#define GENCACHE_CODECACHE_TRACE_INDEX_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "codecache/fragment.h"
#include "support/logging.h"

namespace gencache::cache {

template <typename V>
class TraceIndex
{
  public:
    /** Switch to dense storage for ids in [0, @p id_bound). Panics if
     *  entries already exist (callers prepare before inserting). */
    void reserveDense(std::uint64_t id_bound)
    {
        if (size_ != 0) {
            GENCACHE_PANIC("reserveDense on an index holding {} "
                           "entries", size_);
        }
        dense_ = true;
        values_.assign(id_bound, V{});
        present_.assign(id_bound, 0);
    }

    bool dense() const { return dense_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const V *find(TraceId id) const
    {
        if (dense_) {
            return id < present_.size() && present_[id] != 0
                       ? &values_[id]
                       : nullptr;
        }
        auto it = map_.find(id);
        return it == map_.end() ? nullptr : &it->second;
    }

    V *find(TraceId id)
    {
        return const_cast<V *>(
            static_cast<const TraceIndex *>(this)->find(id));
    }

    bool contains(TraceId id) const { return find(id) != nullptr; }

    /** Insert or overwrite. */
    void set(TraceId id, const V &value)
    {
        if (dense_) {
            growTo(id);
            if (present_[id] == 0) {
                present_[id] = 1;
                ++size_;
            }
            values_[id] = value;
            return;
        }
        auto [it, fresh] = map_.emplace(id, value);
        if (!fresh) {
            it->second = value;
        } else {
            ++size_;
        }
    }

    /** Insert only. @return false when @p id is already present. */
    bool insert(TraceId id, const V &value)
    {
        if (dense_) {
            growTo(id);
            if (present_[id] != 0) {
                return false;
            }
            present_[id] = 1;
            values_[id] = value;
            ++size_;
            return true;
        }
        if (!map_.emplace(id, value).second) {
            return false;
        }
        ++size_;
        return true;
    }

    /** @return false when @p id was absent. */
    bool erase(TraceId id)
    {
        if (dense_) {
            if (id >= present_.size() || present_[id] == 0) {
                return false;
            }
            present_[id] = 0;
            --size_;
            return true;
        }
        if (map_.erase(id) == 0) {
            return false;
        }
        --size_;
        return true;
    }

    /** Visit every (id, value) entry; order unspecified. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        if (dense_) {
            for (std::size_t id = 0; id < present_.size(); ++id) {
                if (present_[id] != 0) {
                    fn(static_cast<TraceId>(id), values_[id]);
                }
            }
            return;
        }
        for (const auto &[id, value] : map_) {
            fn(id, value);
        }
    }

  private:
    /** Dense ids come from CompiledLog's remap and stay below the
     *  reserved bound; growth only covers late remaps. A sparse
     *  sentinel (kInvalidTrace) reaching a dense index is a caller
     *  bug, not a reason to allocate 2^64 slots. */
    void growTo(TraceId id)
    {
        if (id < present_.size()) {
            return;
        }
        if (id >= kDenseIdLimit) {
            GENCACHE_PANIC("dense trace index got sparse id {}", id);
        }
        values_.resize(id + 1, V{});
        present_.resize(id + 1, 0);
    }

    static constexpr TraceId kDenseIdLimit = 1ULL << 31;

    bool dense_ = false;
    std::size_t size_ = 0;
    std::unordered_map<TraceId, V> map_;
    std::vector<V> values_;
    std::vector<std::uint8_t> present_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_TRACE_INDEX_H
