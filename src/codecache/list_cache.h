/**
 * @file
 * Byte-budget local caches ordered by a victim list: idealized FIFO,
 * LRU, preemptive flush, and unbounded.
 *
 * Unlike PseudoCircularCache these do not model byte-level placement —
 * they charge each fragment against a byte budget and pick victims
 * from an ordered list. This matches how prior-work policies (LRU,
 * flush) are usually simulated and keeps the ablation comparisons
 * focused on replacement order rather than layout.
 */

#ifndef GENCACHE_CODECACHE_LIST_CACHE_H
#define GENCACHE_CODECACHE_LIST_CACHE_H

#include <list>
#include <unordered_map>

#include "codecache/local_cache.h"

namespace gencache::cache {

/** Common machinery for list-ordered byte-budget caches. */
class ListCache : public LocalCache
{
  public:
    std::uint64_t usedBytes() const override { return used_; }
    std::size_t fragmentCount() const override { return order_.size(); }
    Fragment *find(TraceId id) override;
    bool contains(TraceId id) const override;
    bool remove(TraceId id, Fragment *out = nullptr) override;
    bool setPinned(TraceId id, bool pinned) override;
    void flush(std::vector<Fragment> &evicted) override;
    void forEach(const std::function<void(const Fragment &)> &fn)
        const override;

  protected:
    explicit ListCache(std::uint64_t capacity) : LocalCache(capacity) {}

    /**
     * Insert @p frag after evicting unpinned fragments from the front
     * of the list until it fits. Plans victims before mutating, so
     * failure (pinned congestion / oversized fragment) leaves the
     * cache unchanged.
     */
    bool insertWithEviction(const Fragment &frag,
                            std::vector<Fragment> &evicted);

    std::list<Fragment> order_; ///< front = next victim
    std::unordered_map<TraceId, std::list<Fragment>::iterator> index_;
    std::uint64_t used_ = 0;
};

/** Idealized circular buffer: FIFO victim order, no layout modeling. */
class FifoCache : public ListCache
{
  public:
    explicit FifoCache(std::uint64_t capacity);

    const char *policyName() const override { return "fifo"; }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
};

/** Least-recently-used replacement. */
class LruCache : public ListCache
{
  public:
    explicit LruCache(std::uint64_t capacity);

    const char *policyName() const override { return "lru"; }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
    void touch(TraceId id, TimeUs now) override;
};

/** Dynamo-style preemptive flush: empty the cache when it fills. */
class FlushCache : public ListCache
{
  public:
    explicit FlushCache(std::uint64_t capacity);

    const char *policyName() const override
    {
        return "preemptive-flush";
    }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
};

/** Unbounded cache: never evicts; records peak occupancy (§3.1). */
class UnboundedCache : public ListCache
{
  public:
    UnboundedCache();

    const char *policyName() const override { return "unbounded"; }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;

    /** Highest usedBytes() ever observed. */
    std::uint64_t peakBytes() const { return peak_; }

  private:
    std::uint64_t peak_ = 0;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_LIST_CACHE_H
