/**
 * @file
 * Byte-budget local caches ordered by a victim list: idealized FIFO,
 * LRU, preemptive flush, and unbounded.
 *
 * Unlike PseudoCircularCache these do not model byte-level placement —
 * they charge each fragment against a byte budget and pick victims
 * from an ordered list. This matches how prior-work policies (LRU,
 * flush) are usually simulated and keeps the ablation comparisons
 * focused on replacement order rather than layout.
 *
 * The victim order is an index-based intrusive ring: fragments live in
 * a slab vector whose slots are linked by integer prev/next indices
 * and recycled through a free list. Insert, remove, and LRU touch are
 * all O(1) pointer-free link updates with no per-fragment node
 * allocations (the slab grows geometrically, slots are reused), and a
 * touch never invalidates the id index because a fragment never leaves
 * its slot.
 */

#ifndef GENCACHE_CODECACHE_LIST_CACHE_H
#define GENCACHE_CODECACHE_LIST_CACHE_H

#include <cstdint>
#include <vector>

#include "codecache/local_cache.h"
#include "codecache/trace_index.h"

namespace gencache::cache {

/** Common machinery for list-ordered byte-budget caches. */
class ListCache : public LocalCache
{
  public:
    /** Slot index sentinel: no node. */
    static constexpr std::uint32_t kNil = ~0U;

    /** One slab slot: a fragment plus its victim-list links. Free
     *  slots are chained through next. */
    struct Node
    {
        Fragment frag;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    std::uint64_t usedBytes() const override { return used_; }
    std::size_t fragmentCount() const override { return count_; }
    Fragment *find(TraceId id) override;
    bool contains(TraceId id) const override;
    bool remove(TraceId id, Fragment *out = nullptr) override;
    bool setPinned(TraceId id, bool pinned) override;
    void flush(std::vector<Fragment> &evicted) override;
    void forEach(const std::function<void(const Fragment &)> &fn)
        const override;
    void reserveDenseIds(std::uint64_t id_bound) override
    {
        index_.reserveDense(id_bound);
    }

    /// @name Introspection for the static checker (src/analysis).
    /// Raw slab state; the checker walks the ring and the free list
    /// itself so broken links are diagnosed, not followed blindly.
    /// @{
    std::size_t slabSize() const { return nodes_.size(); }
    std::uint32_t headSlot() const { return head_; }
    std::uint32_t tailSlot() const { return tail_; }
    std::uint32_t freeHeadSlot() const { return freeHead_; }
    const Node &slot(std::uint32_t n) const { return nodes_[n]; }
    const TraceIndex<std::uint32_t> &slotIndex() const
    {
        return index_;
    }
    /// @}

  protected:
    explicit ListCache(std::uint64_t capacity,
                       bool observes_touch = false)
        : LocalCache(capacity, observes_touch)
    {
    }

    /**
     * Insert @p frag after evicting unpinned fragments from the front
     * of the list until it fits. Plans victims before mutating, so
     * failure (pinned congestion / oversized fragment) leaves the
     * cache unchanged.
     */
    bool insertWithEviction(const Fragment &frag,
                            std::vector<Fragment> &evicted);

    /** Take a slot from the free list (or grow the slab), fill it
     *  with @p frag, and link it at the tail (newest). */
    std::uint32_t pushBack(const Fragment &frag);

    /** Unlink slot @p n from the victim list. */
    void unlink(std::uint32_t n);

    /** Re-link an unlinked slot @p n at the tail (newest). */
    void linkBack(std::uint32_t n);

    /** Unlink @p n, drop its index entry, and recycle the slot. */
    void eraseNode(std::uint32_t n);

    std::vector<Node> nodes_;   ///< slab; slots recycled via free list
    std::uint32_t head_ = kNil; ///< oldest = next victim
    std::uint32_t tail_ = kNil; ///< newest
    std::uint32_t freeHead_ = kNil;
    std::size_t count_ = 0;
    TraceIndex<std::uint32_t> index_;
    std::uint64_t used_ = 0;

  private:
    std::vector<std::uint32_t> victimScratch_; ///< insert plan reuse
};

/** Idealized circular buffer: FIFO victim order, no layout modeling. */
class FifoCache : public ListCache
{
  public:
    explicit FifoCache(std::uint64_t capacity);

    const char *policyName() const override { return "fifo"; }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
};

/** Least-recently-used replacement. */
class LruCache : public ListCache
{
  public:
    explicit LruCache(std::uint64_t capacity);

    const char *policyName() const override { return "lru"; }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
    void touch(TraceId id, TimeUs now) override;
};

/** Dynamo-style preemptive flush: empty the cache when it fills. */
class FlushCache : public ListCache
{
  public:
    explicit FlushCache(std::uint64_t capacity);

    const char *policyName() const override
    {
        return "preemptive-flush";
    }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
};

/**
 * RRIP replacement (TRRIP direction): every fragment carries a 2-bit
 * re-reference prediction value (RRPV). Insertion predicts a *long*
 * re-reference interval (RRPV 2) under SRRIP, or — under BRRIP — a
 * *distant* one (RRPV 3) for all but every 32nd insert, so a burst of
 * single-use traces cannot flush the cache. A hit predicts *near*
 * (RRPV 0). Victims are the fragments already predicted distant; when
 * none exists, all predictions age by one step until one is. Ties
 * break in list (insertion) order, so replacement is deterministic.
 *
 * The byte-budget generalization evicts distant-first until the new
 * fragment fits. Like the other list caches, planning happens before
 * mutation: a failed insert (pinned congestion or an oversized
 * fragment) leaves residency *and* all RRPVs unchanged.
 */
class RripCache : public ListCache
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3;
    /** BRRIP inserts RRPV 2 on every kBimodalPeriod-th insert. */
    static constexpr std::uint32_t kBimodalPeriod = 32;

    /** @param bimodal false = SRRIP, true = BRRIP. */
    RripCache(std::uint64_t capacity, bool bimodal);

    const char *policyName() const override
    {
        return bimodal_ ? "brrip" : "srrip";
    }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
    void touch(TraceId id, TimeUs now) override;

  private:
    bool bimodal_;
    std::uint32_t insertTick_ = 0; ///< BRRIP bimodal counter
    std::vector<std::uint32_t> planScratch_; ///< victim plan reuse
};

/** Unbounded cache: never evicts; records peak occupancy (§3.1). */
class UnboundedCache : public ListCache
{
  public:
    UnboundedCache();

    const char *policyName() const override { return "unbounded"; }
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;

    /** Highest usedBytes() ever observed. */
    std::uint64_t peakBytes() const { return peak_; }

  private:
    std::uint64_t peak_ = 0;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_LIST_CACHE_H
