/**
 * @file
 * Global code cache management (paper §5): the hierarchy and policy of
 * interaction between caches.
 *
 * A CacheManager answers trace lookups and owns one or more local
 * caches. The driver protocol mirrors a dynamic optimizer: on a lookup
 * miss the caller regenerates the trace (paying the Table 2 costs) and
 * then calls insert(). Every cache transition is reported to an
 * optional CacheEventListener, which is how the cost model observes
 * evictions and promotions without coupling the cache code to it.
 */

#ifndef GENCACHE_CODECACHE_CACHE_MANAGER_H
#define GENCACHE_CODECACHE_CACHE_MANAGER_H

#include <cstdint>
#include <string>

#include "codecache/fragment.h"
#include "codecache/local_cache.h"

namespace gencache::cache {

/** Observer of cache transitions (cost accounting, logging, tests). */
class CacheEventListener
{
  public:
    virtual ~CacheEventListener() = default;

    /** Hot-path hint: skip the virtual onHit/onMiss calls for
     *  listeners that never override them (cost accounting only
     *  observes inserts, evictions, and promotions). */
    bool wantsHits() const { return wantsHits_; }
    bool wantsMisses() const { return wantsMisses_; }

    /** A lookup missed: the trace must be (re)generated. */
    virtual void onMiss(TraceId id, TimeUs now)
    {
        (void)id;
        (void)now;
    }

    /** A lookup hit in @p gen. */
    virtual void onHit(TraceId id, Generation gen, TimeUs now)
    {
        (void)id;
        (void)gen;
        (void)now;
    }

    /** @p frag entered @p gen (fresh insert, not a promotion). */
    virtual void onInsert(const Fragment &frag, Generation gen,
                          TimeUs now)
    {
        (void)frag;
        (void)gen;
        (void)now;
    }

    /** @p frag left @p gen. For reason PromotionMove an onPromote
     *  follows; all other reasons destroy the cached code. */
    virtual void onEvict(const Fragment &frag, Generation gen,
                         EvictReason reason, TimeUs now)
    {
        (void)frag;
        (void)gen;
        (void)reason;
        (void)now;
    }

    /** @p frag moved from @p from to @p to (code relocation, §5.4). */
    virtual void onPromote(const Fragment &frag, Generation from,
                           Generation to, TimeUs now)
    {
        (void)frag;
        (void)from;
        (void)to;
        (void)now;
    }

    /** Module @p module finished unloading: every onEvict with reason
     *  Unmap for its fragments has been delivered. Emitted by
     *  TierPipeline (and its adapters) after invalidateModule so
     *  temporal checkers can verify unload completeness; cost
     *  accounting ignores it. */
    virtual void onModuleUnload(ModuleId module, TimeUs now)
    {
        (void)module;
        (void)now;
    }

  protected:
    CacheEventListener() = default;

    /** Subclasses that leave onHit/onMiss as the base no-ops should
     *  pass false so managers can skip the virtual dispatch. */
    CacheEventListener(bool wants_hits, bool wants_misses)
        : wantsHits_(wants_hits), wantsMisses_(wants_misses)
    {
    }

  private:
    bool wantsHits_ = true;
    bool wantsMisses_ = true;
};

/**
 * Fan-out listener: forwards every event to two listeners, @p first
 * before @p second. The hit/miss dispatch hints are the union of the
 * two, so a hit-indifferent accountant plus a hit-observing checker
 * still sees hits. Used by CacheSimulator to attach an analysis probe
 * beside its cost accountant (neither is owned).
 */
class TeeListener : public CacheEventListener
{
  public:
    TeeListener(CacheEventListener &first, CacheEventListener &second)
        : CacheEventListener(
              first.wantsHits() || second.wantsHits(),
              first.wantsMisses() || second.wantsMisses()),
          first_(first), second_(second)
    {
    }

    void onMiss(TraceId id, TimeUs now) override
    {
        if (first_.wantsMisses()) {
            first_.onMiss(id, now);
        }
        if (second_.wantsMisses()) {
            second_.onMiss(id, now);
        }
    }

    void onHit(TraceId id, Generation gen, TimeUs now) override
    {
        if (first_.wantsHits()) {
            first_.onHit(id, gen, now);
        }
        if (second_.wantsHits()) {
            second_.onHit(id, gen, now);
        }
    }

    void onInsert(const Fragment &frag, Generation gen,
                  TimeUs now) override
    {
        first_.onInsert(frag, gen, now);
        second_.onInsert(frag, gen, now);
    }

    void onEvict(const Fragment &frag, Generation gen,
                 EvictReason reason, TimeUs now) override
    {
        first_.onEvict(frag, gen, reason, now);
        second_.onEvict(frag, gen, reason, now);
    }

    void onPromote(const Fragment &frag, Generation from,
                   Generation to, TimeUs now) override
    {
        first_.onPromote(frag, from, to, now);
        second_.onPromote(frag, from, to, now);
    }

    void onModuleUnload(ModuleId module, TimeUs now) override
    {
        first_.onModuleUnload(module, now);
        second_.onModuleUnload(module, now);
    }

  private:
    CacheEventListener &first_;
    CacheEventListener &second_;
};

/** Aggregate counters of a global manager. */
struct ManagerStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t insertedBytes = 0;
    std::uint64_t deletions = 0;      ///< capacity + rejection deletions
    std::uint64_t deletedBytes = 0;
    std::uint64_t unmapDeletions = 0;
    std::uint64_t unmapDeletedBytes = 0;
    std::uint64_t promotions = 0;     ///< all inter-cache moves
    std::uint64_t promotedBytes = 0;
    std::uint64_t probationRejections = 0;
    std::uint64_t placementFailures = 0;

    /** Fraction of lookups that missed (0 when no lookups). */
    double missRate() const
    {
        return lookups == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(lookups);
    }
};

/** Interface of a global cache management scheme. */
class CacheManager
{
  public:
    virtual ~CacheManager() = default;

    CacheManager() = default;
    CacheManager(const CacheManager &) = delete;
    CacheManager &operator=(const CacheManager &) = delete;

    /** Human-readable configuration name for reports. */
    virtual std::string name() const = 0;

    /**
     * Look up trace @p id at virtual time @p now.
     * @return true on hit. On miss the caller must regenerate the
     *         trace and call insert().
     */
    virtual bool lookup(TraceId id, TimeUs now) = 0;

    /** Insert a newly generated trace. Must not be resident.
     *  @return false when placement failed (trace runs uncached). */
    virtual bool insert(TraceId id, std::uint32_t size_bytes,
                        ModuleId module, TimeUs now) = 0;

    /** Program-forced eviction of every trace tagged @p module. */
    virtual void invalidateModule(ModuleId module, TimeUs now) = 0;

    /** Mark/unmark @p id undeletable.
     *  @return false when not resident. */
    virtual bool setPinned(TraceId id, bool pinned) = 0;

    /** @return true when @p id is resident in any cache. */
    virtual bool contains(TraceId id) const = 0;

    /**
     * Declare that every trace id this manager will see lies in
     * [0, @p id_bound) — the contract of a tracelog::CompiledLog
     * replay. Managers that can switch their residency index to dense
     * storage do so here; must be called before the first insert.
     * Default: no-op (sparse ids keep working everywhere).
     */
    virtual void prepareDenseIds(std::uint64_t id_bound)
    {
        (void)id_bound;
    }

    /** Sum of all local cache capacities in bytes. */
    virtual std::uint64_t totalCapacity() const = 0;

    /** Sum of bytes resident across all local caches. */
    virtual std::uint64_t usedBytes() const = 0;

    const ManagerStats &stats() const { return stats_; }

    /** Attach @p listener (not owned; nullptr detaches). */
    void setListener(CacheEventListener *listener)
    {
        listener_ = listener;
    }

  protected:
    CacheEventListener *listener_ = nullptr;
    ManagerStats stats_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_CACHE_MANAGER_H
