#include "codecache/pseudo_circular_cache.h"

#include "support/logging.h"

namespace gencache::cache {

PseudoCircularCache::PseudoCircularCache(std::uint64_t capacity)
    : LocalCache(capacity), region_(capacity)
{
}

std::uint64_t
PseudoCircularCache::usedBytes() const
{
    return region_.usedBytes();
}

std::size_t
PseudoCircularCache::fragmentCount() const
{
    return region_.fragmentCount();
}

bool
PseudoCircularCache::insert(const Fragment &frag,
                            std::vector<Fragment> &evicted)
{
    std::size_t before = evicted.size();
    if (!region_.place(frag, evicted)) {
        ++stats_.placementFailures;
        return false;
    }
    ++stats_.inserts;
    stats_.insertedBytes += frag.sizeBytes;
    for (std::size_t i = before; i < evicted.size(); ++i) {
        ++stats_.capacityEvictions;
        stats_.capacityEvictedBytes += evicted[i].sizeBytes;
    }
    return true;
}

Fragment *
PseudoCircularCache::find(TraceId id)
{
    return region_.find(id);
}

bool
PseudoCircularCache::contains(TraceId id) const
{
    return region_.find(id) != nullptr;
}

bool
PseudoCircularCache::remove(TraceId id, Fragment *out)
{
    Fragment scratch;
    if (!region_.remove(id, &scratch)) {
        return false;
    }
    ++stats_.removals;
    stats_.removedBytes += scratch.sizeBytes;
    if (out != nullptr) {
        *out = scratch;
    }
    return true;
}

std::size_t
PseudoCircularCache::removeModule(ModuleId module,
                                 std::vector<Fragment> &out)
{
    const std::size_t before = out.size();
    const std::size_t removed = region_.removeModule(module, out);
    stats_.removals += removed;
    for (std::size_t i = before; i < out.size(); ++i) {
        stats_.removedBytes += out[i].sizeBytes;
    }
    return removed;
}

bool
PseudoCircularCache::setPinned(TraceId id, bool pinned)
{
    return region_.setPinned(id, pinned);
}

void
PseudoCircularCache::flush(std::vector<Fragment> &evicted)
{
    ++stats_.flushes;
    region_.flush(evicted);
}

void
PseudoCircularCache::forEach(
    const std::function<void(const Fragment &)> &fn) const
{
    region_.forEach(fn);
}

} // namespace gencache::cache
