/**
 * @file
 * Cross-process shared code store: the fleet's last cache tier.
 *
 * The paper's generational caches are strictly per-process; ShareJIT
 * showed that a fleet of processes executing the same shared libraries
 * wastes memory re-JITing identical code N times. Canonical trace
 * identity — cache::canonicalTraceId's (module uid, offset) packing —
 * makes the fix mechanical: a process-independent key space that one
 * shared persistent tier can serve for every process at once.
 *
 * SharedCodeStore is that tier. It is sharded by key hash with one
 * striped lock per shard (annotated for clang's thread-safety
 * analysis), so concurrent publishes from different processes contend
 * only when they land in the same shard. Each per-process TierPipeline
 * mounts the store behind its private tiers: private capacity victims
 * that earned promotion are *published*; a second process publishing
 * or probing the same canonical key *attaches* to the existing entry
 * instead of re-inserting (the dedup that saves memory); unmapping a
 * shared DLL anywhere invalidates the module's entries for every
 * process at once (conservative, like ShareJIT's class-unload story).
 *
 * The store never emits per-process cache events: from one process's
 * cost model, shared hits are just hits in Generation::Shared, and a
 * shared capacity eviction surfaces later as an ordinary miss.
 *
 * Ordering note: the store has no global clock — publishing processes
 * run on unrelated virtual clocks — so entries and invalidations are
 * stamped with a store-local monotonic tick, which is what the
 * shr-unmap-stale analysis pass compares.
 */

#ifndef GENCACHE_CODECACHE_SHARED_STORE_H
#define GENCACHE_CODECACHE_SHARED_STORE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "codecache/fragment.h"
#include "support/thread_annotations.h"

namespace gencache::cache {

/** Sizing of a SharedCodeStore. */
struct SharedStoreConfig
{
    unsigned shards = 8;             ///< lock stripes (>= 1)
    std::uint64_t capacityBytes = 32ull << 20; ///< across all shards
    unsigned processLimit = 64;      ///< attach-mask width (<= 64)
};

/** Aggregate counters across all shards (snapshot). */
struct SharedStoreStats
{
    std::uint64_t probes = 0;
    std::uint64_t probeHits = 0;
    std::uint64_t publishes = 0;      ///< all publish() calls
    std::uint64_t inserts = 0;        ///< publishes that created entries
    std::uint64_t attaches = 0;       ///< first-time process attaches
    std::uint64_t duplicatePublishes = 0; ///< publisher already attached
    std::uint64_t rejectedPublishes = 0;  ///< entry larger than a shard
    std::uint64_t capacityEvictions = 0;
    std::uint64_t capacityEvictedBytes = 0;
    std::uint64_t unmapEvictions = 0;
    std::uint64_t unmapEvictedBytes = 0;
    std::uint64_t invalidations = 0;  ///< invalidateModule() calls
    std::uint64_t lockContentions = 0; ///< blocking shard-lock waits
};

/**
 * The sharded cross-process store. All entry points are safe to call
 * concurrently from any number of threads ("processes"); each shard's
 * state is guarded by its stripe lock.
 */
class SharedCodeStore
{
  public:
    /** Outcome of publish(). */
    enum class PublishResult : std::uint8_t {
        Inserted,        ///< first copy fleet-wide: entry created
        Attached,        ///< deduplicated against another process
        AlreadyAttached, ///< this process had already attached
        Rejected,        ///< larger than a whole shard
    };

    /** One shared trace (value snapshot for introspection). */
    struct Entry
    {
        TraceId key = kInvalidTrace; ///< canonical (uid, offset) id
        std::uint32_t sizeBytes = 0;
        std::uint64_t attachedMask = 0; ///< bit p: process p attached
        std::uint32_t attachCount = 0;  ///< popcount of attachedMask
        std::uint64_t insertTick = 0;   ///< store tick at insertion
    };

    explicit SharedCodeStore(SharedStoreConfig config);

    SharedCodeStore(const SharedCodeStore &) = delete;
    SharedCodeStore &operator=(const SharedCodeStore &) = delete;

    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Per-shard byte budget (capacityBytes split evenly). */
    std::uint64_t shardCapacityBytes() const { return shardCapacity_; }

    unsigned processLimit() const { return config_.processLimit; }

    /** Owning shard of @p key among @p shard_count: pure function of
     *  the key, recomputable by the shr-shard-owner analysis pass. */
    static unsigned shardOf(TraceId key, unsigned shard_count)
    {
        // Multiplicative mix so sequential offsets spread across
        // shards instead of clustering in one stripe per module.
        std::uint64_t mixed = key * 0x9E3779B97F4A7C15ull;
        return static_cast<unsigned>((mixed >> 32) % shard_count);
    }

    /**
     * Lookup from process @p process. On hit the process attaches to
     * the entry (it now runs the shared copy, counted once for the
     * dedup metrics). @return true on hit.
     */
    bool probe(TraceId key, unsigned process);

    /**
     * Offer the trace to the store from @p process (a private
     * last-tier capacity victim that earned promotion). Deduplicates:
     * when the key is already resident, the process attaches instead
     * of inserting a second copy. Creating an entry may FIFO-evict
     * older entries of the same shard.
     */
    PublishResult publish(TraceId key, std::uint32_t size_bytes,
                          unsigned process);

    /**
     * Cross-process invalidation: module @p uid was unmapped
     * somewhere, so every shard drops all its traces (every process
     * would republish a remapped DLL's traces under the same keys).
     */
    void invalidateModule(ModuleUid uid);

    /** @return true when @p key is resident in its shard. */
    bool contains(TraceId key) const;

    /** @return true when any entry of module @p uid is resident. */
    bool containsModule(ModuleUid uid) const;

    /** Resident bytes across shards (one copy per entry). */
    std::uint64_t usedBytes() const;

    /** Peak of usedBytes() (sum of per-shard peaks). */
    std::uint64_t peakUsedBytes() const;

    /**
     * Resident bytes *as claimed by attached processes*: the sum of
     * size x attachCount — what the same traces would occupy if every
     * process kept a private copy. claimedBytes() - usedBytes() is
     * the store's live dedup saving.
     */
    std::uint64_t claimedBytes() const;

    /** Peak of claimedBytes() (sum of per-shard peaks). */
    std::uint64_t peakClaimedBytes() const;

    std::size_t entryCount() const;

    SharedStoreStats stats() const;

    /** Store tick of the last invalidateModule(@p uid), 0 if none.
     *  Every surviving entry of @p uid must be newer (shr-unmap-stale
     *  checks exactly this). */
    std::uint64_t lastInvalidationTick(ModuleUid uid) const;

    /** Visit every resident entry as (shard index, entry snapshot).
     *  Locks one shard at a time; the callback must not reenter the
     *  store. */
    void forEachEntry(
        const std::function<void(unsigned, const Entry &)> &fn) const;

    /** Internal consistency check (test support): byte accounting,
     *  FIFO membership, and attach masks must agree. Panics on
     *  violation. */
    void validate() const;

  private:
    struct ShardStats
    {
        std::uint64_t probes = 0;
        std::uint64_t probeHits = 0;
        std::uint64_t publishes = 0;
        std::uint64_t inserts = 0;
        std::uint64_t attaches = 0;
        std::uint64_t duplicatePublishes = 0;
        std::uint64_t rejectedPublishes = 0;
        std::uint64_t capacityEvictions = 0;
        std::uint64_t capacityEvictedBytes = 0;
        std::uint64_t unmapEvictions = 0;
        std::uint64_t unmapEvictedBytes = 0;
    };

    struct Shard
    {
        mutable Mutex mutex;
        std::unordered_map<TraceId, Entry> entries
            GENCACHE_GUARDED_BY(mutex);
        std::deque<TraceId> fifo GENCACHE_GUARDED_BY(mutex);
        std::uint64_t usedBytes GENCACHE_GUARDED_BY(mutex) = 0;
        std::uint64_t peakUsedBytes GENCACHE_GUARDED_BY(mutex) = 0;
        std::uint64_t claimedBytes GENCACHE_GUARDED_BY(mutex) = 0;
        std::uint64_t peakClaimedBytes GENCACHE_GUARDED_BY(mutex) = 0;
        ShardStats stats GENCACHE_GUARDED_BY(mutex);
    };

    Shard &shardFor(TraceId key)
    {
        return shards_[shardOf(key, shardCount())];
    }
    const Shard &shardFor(TraceId key) const
    {
        return shards_[shardOf(key, shardCount())];
    }

    /** Lock @p shard, counting the wait when the stripe is contested
     *  (the bench's contention metric). */
    void lockShard(const Shard &shard) const
        GENCACHE_ACQUIRE(shard.mutex);

    /** Attach @p process to @p entry under the shard lock.
     *  @return true when this was a first-time attach. */
    bool attachLocked(Shard &shard, Entry &entry, unsigned process)
        GENCACHE_REQUIRES(shard.mutex);

    SharedStoreConfig config_;
    std::uint64_t shardCapacity_ = 0;
    // deque: Shard is immovable (Mutex), vector would need movability.
    std::deque<Shard> shards_;
    std::atomic<std::uint64_t> tick_{1};
    std::atomic<std::uint64_t> invalidationCalls_{0};
    mutable std::atomic<std::uint64_t> lockContentions_{0};

    mutable Mutex invalidationMutex_;
    std::unordered_map<ModuleUid, std::uint64_t> lastInvalidation_
        GENCACHE_GUARDED_BY(invalidationMutex_);
};

/** @return printable name of @p result. */
const char *publishResultName(SharedCodeStore::PublishResult result);

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_SHARED_STORE_H
