/**
 * @file
 * The paper's pseudo-circular local policy (§4.3) as a LocalCache,
 * backed by the byte-granular CacheRegion.
 */

#ifndef GENCACHE_CODECACHE_PSEUDO_CIRCULAR_CACHE_H
#define GENCACHE_CODECACHE_PSEUDO_CIRCULAR_CACHE_H

#include "codecache/cache_region.h"
#include "codecache/local_cache.h"

namespace gencache::cache {

/** Address-accurate pseudo-circular (FIFO + pinned skip) cache. */
class PseudoCircularCache : public LocalCache
{
  public:
    /** @param capacity cache size in bytes; must be positive. */
    explicit PseudoCircularCache(std::uint64_t capacity);

    const char *policyName() const override
    {
        return "pseudo-circular";
    }

    std::uint64_t usedBytes() const override;
    std::size_t fragmentCount() const override;
    bool insert(const Fragment &frag,
                std::vector<Fragment> &evicted) override;
    Fragment *find(TraceId id) override;
    bool contains(TraceId id) const override;
    bool remove(TraceId id, Fragment *out = nullptr) override;
    std::size_t removeModule(ModuleId module,
                             std::vector<Fragment> &out) override;
    bool setPinned(TraceId id, bool pinned) override;
    void flush(std::vector<Fragment> &evicted) override;
    void forEach(const std::function<void(const Fragment &)> &fn)
        const override;
    void reserveDenseIds(std::uint64_t id_bound) override
    {
        region_.reserveDenseIds(id_bound);
    }

    /** Direct access to the underlying region (stats, tests). */
    const CacheRegion &region() const { return region_; }

  private:
    CacheRegion region_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_PSEUDO_CIRCULAR_CACHE_H
