#include "codecache/generational_cache.h"

#include <cmath>

#include "support/format.h"
#include "support/logging.h"

namespace gencache::cache {

GenerationalConfig
GenerationalConfig::fromProportions(std::uint64_t total,
                                    double nursery_frac,
                                    double probation_frac,
                                    std::uint32_t threshold, bool eager,
                                    LocalPolicy policy)
{
    if (nursery_frac <= 0.0 || probation_frac <= 0.0 ||
        nursery_frac + probation_frac >= 1.0) {
        fatal("invalid generational proportions {} / {}", nursery_frac,
              probation_frac);
    }
    auto part = [total](double frac) {
        auto bytes = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(total) * frac));
        // Tiny totals can round a positive fraction down to zero
        // bytes, which the manager rightly rejects; give the tier its
        // minimum one byte instead.
        return total > 0 && bytes == 0 ? std::uint64_t{1} : bytes;
    };
    GenerationalConfig config;
    config.nurseryBytes = part(nursery_frac);
    config.probationBytes = part(probation_frac);
    if (config.nurseryBytes + config.probationBytes >= total) {
        fatal("generational proportions leave no persistent space");
    }
    config.persistentBytes =
        total - config.nurseryBytes - config.probationBytes;
    if (config.nurseryBytes + config.probationBytes +
            config.persistentBytes != total) {
        GENCACHE_PANIC("generational split of {} does not sum ({} / "
                       "{} / {})", total, config.nurseryBytes,
                       config.probationBytes, config.persistentBytes);
    }
    config.promotionThreshold = threshold;
    config.eagerPromotion = eager;
    config.policy = policy;
    return config;
}

namespace {

/** Validate @p config with the historical diagnostics, then lay it
 *  out as a 3-tier pipeline: always-promote into probation, the
 *  paper's threshold filter into the persistent cache. */
TierPipelineInit
generationalInit(const GenerationalConfig &config)
{
    if (config.nurseryBytes == 0 || config.probationBytes == 0 ||
        config.persistentBytes == 0) {
        fatal("generational caches need positive sizes "
              "({} / {} / {})", config.nurseryBytes,
              config.probationBytes, config.persistentBytes);
    }
    if (config.promotionThreshold == 0) {
        fatal("promotion threshold must be at least 1");
    }
    if (config.policy == LocalPolicy::Unbounded) {
        fatal("generational caches require a bounded local policy");
    }

    double total = static_cast<double>(config.totalBytes());
    auto pct = [total](std::uint64_t bytes) {
        return static_cast<int>(
            std::llround(100.0 * static_cast<double>(bytes) / total));
    };

    TierPipelineInit init;
    init.name = format("generational {}-{}-{} thr={}{}",
                       pct(config.nurseryBytes),
                       pct(config.probationBytes),
                       pct(config.persistentBytes),
                       config.promotionThreshold,
                       config.eagerPromotion ? " eager" : "");
    init.tiers = {
        TierSpec{config.nurseryBytes, config.policy},
        TierSpec{config.probationBytes, config.policy},
        TierSpec{config.persistentBytes, config.policy},
    };
    init.edges.push_back(std::make_unique<AlwaysPromotePolicy>());
    init.edges.push_back(std::make_unique<ThresholdPolicy>(
        config.promotionThreshold, config.eagerPromotion));
    return init;
}

} // namespace

GenerationalCacheManager::GenerationalCacheManager(
    const GenerationalConfig &config)
    : TierPipeline(generationalInit(config)), config_(config)
{
}

std::size_t
GenerationalCacheManager::tierIndexOf(Generation gen) const
{
    for (std::size_t tier = 0; tier < tierCount(); ++tier) {
        if (tierLabel(tier) == gen) {
            return tier;
        }
    }
    GENCACHE_PANIC("generational manager has no {} cache",
                   generationName(gen));
}

} // namespace gencache::cache
