#include "codecache/generational_cache.h"

#include <cmath>

#include "support/format.h"
#include "support/logging.h"

namespace gencache::cache {

GenerationalConfig
GenerationalConfig::fromProportions(std::uint64_t total,
                                    double nursery_frac,
                                    double probation_frac,
                                    std::uint32_t threshold, bool eager,
                                    LocalPolicy policy)
{
    if (nursery_frac <= 0.0 || probation_frac <= 0.0 ||
        nursery_frac + probation_frac >= 1.0) {
        fatal("invalid generational proportions {} / {}", nursery_frac,
              probation_frac);
    }
    GenerationalConfig config;
    config.nurseryBytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(total) * nursery_frac));
    config.probationBytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(total) * probation_frac));
    if (config.nurseryBytes + config.probationBytes >= total) {
        fatal("generational proportions leave no persistent space");
    }
    config.persistentBytes =
        total - config.nurseryBytes - config.probationBytes;
    config.promotionThreshold = threshold;
    config.eagerPromotion = eager;
    config.policy = policy;
    return config;
}

GenerationalCacheManager::GenerationalCacheManager(
    const GenerationalConfig &config)
    : config_(config)
{
    if (config_.nurseryBytes == 0 || config_.probationBytes == 0 ||
        config_.persistentBytes == 0) {
        fatal("generational caches need positive sizes "
              "({} / {} / {})", config_.nurseryBytes,
              config_.probationBytes, config_.persistentBytes);
    }
    if (config_.promotionThreshold == 0) {
        fatal("promotion threshold must be at least 1");
    }
    if (config_.policy == LocalPolicy::Unbounded) {
        fatal("generational caches require a bounded local policy");
    }
    nursery_ = makeLocalCache(config_.policy, config_.nurseryBytes);
    probation_ = makeLocalCache(config_.policy, config_.probationBytes);
    persistent_ =
        makeLocalCache(config_.policy, config_.persistentBytes);
}

std::string
GenerationalCacheManager::name() const
{
    double total = static_cast<double>(config_.totalBytes());
    auto pct = [total](std::uint64_t bytes) {
        return static_cast<int>(
            std::llround(100.0 * static_cast<double>(bytes) / total));
    };
    return format("generational {}-{}-{} thr={}{}",
                  pct(config_.nurseryBytes), pct(config_.probationBytes),
                  pct(config_.persistentBytes),
                  config_.promotionThreshold,
                  config_.eagerPromotion ? " eager" : "");
}

LocalCache &
GenerationalCacheManager::cacheOf(Generation gen)
{
    switch (gen) {
      case Generation::Nursery: return *nursery_;
      case Generation::Probation: return *probation_;
      case Generation::Persistent: return *persistent_;
      case Generation::Unified:
        break;
    }
    GENCACHE_PANIC("generational manager has no {} cache",
                   generationName(gen));
}

GenerationStats &
GenerationalCacheManager::statsOf(Generation gen)
{
    switch (gen) {
      case Generation::Nursery: return nurseryStats_;
      case Generation::Probation: return probationStats_;
      case Generation::Persistent: return persistentStats_;
      case Generation::Unified:
        break;
    }
    GENCACHE_PANIC("generational manager has no {} stats",
                   generationName(gen));
}

const LocalCache &
GenerationalCacheManager::localCache(Generation gen) const
{
    switch (gen) {
      case Generation::Nursery: return *nursery_;
      case Generation::Probation: return *probation_;
      case Generation::Persistent: return *persistent_;
      case Generation::Unified:
        break;
    }
    GENCACHE_PANIC("generational manager has no {} cache",
                   generationName(gen));
}

const GenerationStats &
GenerationalCacheManager::generationStats(Generation gen) const
{
    switch (gen) {
      case Generation::Nursery: return nurseryStats_;
      case Generation::Probation: return probationStats_;
      case Generation::Persistent: return persistentStats_;
      case Generation::Unified:
        break;
    }
    GENCACHE_PANIC("generational manager has no {} stats",
                   generationName(gen));
}

bool
GenerationalCacheManager::lookup(TraceId id, TimeUs now)
{
    ++stats_.lookups;
    const Generation *found = where_.find(id);
    if (found == nullptr) {
        ++stats_.misses;
        if (listener_ != nullptr) {
            listener_->onMiss(id, now);
        }
        return false;
    }

    Generation gen = *found;
    LocalCache &cache = cacheOf(gen);
    Fragment *frag = cache.find(id);
    if (frag == nullptr) {
        GENCACHE_PANIC("trace {} indexed in {} but not resident", id,
                       generationName(gen));
    }
    ++stats_.hits;
    ++statsOf(gen).hits;
    cache.touch(id, now);
    if (listener_ != nullptr) {
        listener_->onHit(id, gen, now);
    }

    if (gen == Generation::Probation) {
        ++frag->accessCount;
        if (config_.eagerPromotion &&
            frag->accessCount >= config_.promotionThreshold) {
            Fragment moving = *frag;
            probation_->remove(id);
            where_.erase(id);
            promoteToPersistent(moving, now);
        }
    }
    return true;
}

bool
GenerationalCacheManager::insert(TraceId id, std::uint32_t size_bytes,
                                 ModuleId module, TimeUs now)
{
    if (where_.contains(id)) {
        GENCACHE_PANIC("insert of resident trace {}", id);
    }
    Fragment frag;
    frag.id = id;
    frag.sizeBytes = size_bytes;
    frag.module = module;
    frag.insertTime = now;

    std::vector<Fragment> evicted;
    if (!nursery_->insert(frag, evicted)) {
        ++stats_.placementFailures;
        return false;
    }
    where_.insert(id, Generation::Nursery);
    ++stats_.inserts;
    stats_.insertedBytes += size_bytes;
    if (listener_ != nullptr) {
        listener_->onInsert(frag, Generation::Nursery, now);
    }
    for (Fragment &victim : evicted) {
        cascadeVictim(Generation::Nursery, victim, now);
    }
    return true;
}

void
GenerationalCacheManager::cascadeVictim(Generation gen, Fragment victim,
                                        TimeUs now)
{
    if (gen == Generation::Nursery) {
        // Figure 8: "promote nursery trace to probation cache".
        victim.accessCount = 0;
        victim.insertTime = now;
        std::vector<Fragment> evicted;
        if (!probation_->insert(victim, evicted)) {
            ++stats_.placementFailures;
            destroy(victim, Generation::Nursery, EvictReason::Capacity,
                    now);
            return;
        }
        where_.set(victim.id, Generation::Probation);
        ++stats_.promotions;
        stats_.promotedBytes += victim.sizeBytes;
        ++nurseryStats_.promotionsOut;
        ++probationStats_.promotionsIn;
        if (listener_ != nullptr) {
            listener_->onEvict(victim, Generation::Nursery,
                               EvictReason::PromotionMove, now);
            listener_->onPromote(victim, Generation::Nursery,
                                 Generation::Probation, now);
        }
        for (Fragment &next : evicted) {
            cascadeVictim(Generation::Probation, next, now);
        }
        return;
    }

    if (gen == Generation::Probation) {
        // Figure 8: promote when the access count reached the
        // threshold, delete otherwise.
        if (victim.accessCount >= config_.promotionThreshold) {
            promoteToPersistent(victim, now);
        } else {
            ++stats_.probationRejections;
            destroy(victim, Generation::Probation,
                    EvictReason::Rejected, now);
        }
        return;
    }

    // Persistent victims are deleted.
    destroy(victim, Generation::Persistent, EvictReason::Capacity, now);
}

void
GenerationalCacheManager::promoteToPersistent(Fragment frag, TimeUs now)
{
    Generation from = Generation::Probation;
    frag.insertTime = now;
    std::vector<Fragment> evicted;
    if (!persistent_->insert(frag, evicted)) {
        ++stats_.placementFailures;
        destroy(frag, from, EvictReason::Capacity, now);
        return;
    }
    where_.set(frag.id, Generation::Persistent);
    ++stats_.promotions;
    stats_.promotedBytes += frag.sizeBytes;
    ++probationStats_.promotionsOut;
    ++persistentStats_.promotionsIn;
    if (listener_ != nullptr) {
        listener_->onEvict(frag, from, EvictReason::PromotionMove, now);
        listener_->onPromote(frag, from, Generation::Persistent, now);
    }
    for (Fragment &victim : evicted) {
        cascadeVictim(Generation::Persistent, victim, now);
    }
}

void
GenerationalCacheManager::destroy(const Fragment &frag, Generation gen,
                                  EvictReason reason, TimeUs now)
{
    where_.erase(frag.id);
    ++stats_.deletions;
    stats_.deletedBytes += frag.sizeBytes;
    ++statsOf(gen).deletions;
    if (listener_ != nullptr) {
        listener_->onEvict(frag, gen, reason, now);
    }
}

void
GenerationalCacheManager::invalidateModule(ModuleId module, TimeUs now)
{
    const Generation generations[] = {Generation::Nursery,
                                      Generation::Probation,
                                      Generation::Persistent};
    for (Generation gen : generations) {
        LocalCache &cache = cacheOf(gen);
        std::vector<TraceId> victims;
        cache.forEach([&](const Fragment &frag) {
            if (frag.module == module) {
                victims.push_back(frag.id);
            }
        });
        for (TraceId id : victims) {
            Fragment removed;
            cache.remove(id, &removed);
            where_.erase(id);
            ++stats_.unmapDeletions;
            stats_.unmapDeletedBytes += removed.sizeBytes;
            ++statsOf(gen).deletions;
            if (listener_ != nullptr) {
                listener_->onEvict(removed, gen, EvictReason::Unmap,
                                   now);
            }
        }
    }
}

bool
GenerationalCacheManager::setPinned(TraceId id, bool pinned)
{
    const Generation *found = where_.find(id);
    if (found == nullptr) {
        return false;
    }
    return cacheOf(*found).setPinned(id, pinned);
}

bool
GenerationalCacheManager::contains(TraceId id) const
{
    return where_.contains(id);
}

void
GenerationalCacheManager::prepareDenseIds(std::uint64_t id_bound)
{
    where_.reserveDense(id_bound);
    nursery_->reserveDenseIds(id_bound);
    probation_->reserveDenseIds(id_bound);
    persistent_->reserveDenseIds(id_bound);
}

std::uint64_t
GenerationalCacheManager::totalCapacity() const
{
    return config_.totalBytes();
}

std::uint64_t
GenerationalCacheManager::usedBytes() const
{
    return nursery_->usedBytes() + probation_->usedBytes() +
           persistent_->usedBytes();
}

Generation
GenerationalCacheManager::generationOf(TraceId id) const
{
    const Generation *found = where_.find(id);
    if (found == nullptr) {
        GENCACHE_PANIC("generationOf: trace {} not resident", id);
    }
    return *found;
}

void
GenerationalCacheManager::validate() const
{
    std::size_t resident = 0;
    const Generation generations[] = {Generation::Nursery,
                                      Generation::Probation,
                                      Generation::Persistent};
    for (Generation gen : generations) {
        const LocalCache &cache = localCache(gen);
        resident += cache.fragmentCount();
        cache.forEach([&](const Fragment &frag) {
            const Generation *found = where_.find(frag.id);
            if (found == nullptr || *found != gen) {
                GENCACHE_PANIC("trace {} resident in {} but indexed "
                               "elsewhere", frag.id,
                               generationName(gen));
            }
        });
    }
    if (resident != where_.size()) {
        GENCACHE_PANIC("index holds {} traces but caches hold {}",
                       where_.size(), resident);
    }
}

} // namespace gencache::cache
