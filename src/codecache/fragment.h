/**
 * @file
 * Core value types of the code cache: fragments, generations, and
 * eviction reasons.
 *
 * A fragment is one cached code trace (a superblock emitted by trace
 * selection). The cache layer is deliberately independent of the guest
 * ISA: it sees opaque trace identities, byte sizes, and module tags, so
 * the same cache code serves both live execution (src/runtime) and
 * trace-driven simulation (src/sim), exactly like the paper's
 * DynamoRIO-log-driven cache simulator.
 */

#ifndef GENCACHE_CODECACHE_FRAGMENT_H
#define GENCACHE_CODECACHE_FRAGMENT_H

#include <cstdint>

#include "support/units.h"

namespace gencache::cache {

/** Identity of a code trace, stable across eviction and regeneration. */
using TraceId = std::uint64_t;

/** Sentinel for "no trace". */
constexpr TraceId kInvalidTrace = ~0ULL;

/** Module tag used for program-forced eviction (unmapped memory). */
using ModuleId = std::uint32_t;

/** Sentinel for "no module". */
constexpr ModuleId kNoModule = ~0U;

/** Which cache of the hierarchy a fragment lives in.
 *
 *  The first four labels are the paper's fixed roles; Tier1..Tier6
 *  label the middle tiers of deeper pipeline topologies
 *  (tier_pipeline.h), where the first tier is always the Nursery and
 *  the last tier always the Persistent cache. */
enum class Generation : std::uint8_t {
    Unified,    ///< the single cache of a non-generational manager
    Nursery,    ///< newly created traces (paper §5)
    Probation,  ///< victim filter between nursery and persistent
    Persistent, ///< long-lived traces
    Tier1,      ///< middle tier #1 of a >3-tier pipeline
    Tier2,      ///< middle tier #2
    Tier3,      ///< middle tier #3
    Tier4,      ///< middle tier #4
    Tier5,      ///< middle tier #5
    Tier6,      ///< middle tier #6
};

/** @return a short printable name for @p gen. */
const char *generationName(Generation gen);

/** Why a fragment left a cache. */
enum class EvictReason : std::uint8_t {
    Capacity,      ///< displaced by the local replacement policy
    Unmap,         ///< program-forced: its module was unmapped
    Flush,         ///< whole-cache flush
    PromotionMove, ///< moved to an older generation (not a deletion)
    Rejected,      ///< left probation without earning promotion
};

/** @return a short printable name for @p reason. */
const char *evictReasonName(EvictReason reason);

/** @return true when @p reason destroys the cached code (the trace
 *  must be regenerated if executed again). */
bool isDeletion(EvictReason reason);

/** One cached code trace. Plain value type owned by its cache. */
struct Fragment
{
    TraceId id = kInvalidTrace;
    std::uint32_t sizeBytes = 0;
    ModuleId module = kNoModule;
    bool pinned = false;          ///< undeletable (paper §4.2)
    std::uint8_t rrpv = 0;        ///< RRIP re-reference prediction
    std::uint32_t accessCount = 0; ///< hits while in probation
    TimeUs insertTime = 0;         ///< when it entered its current cache
    TimeUs lastAccess = 0;         ///< policy clock (temperature decay)
    std::uint64_t addr = 0;        ///< offset within its cache region
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_FRAGMENT_H
