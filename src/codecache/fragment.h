/**
 * @file
 * Core value types of the code cache: fragments, generations, and
 * eviction reasons.
 *
 * A fragment is one cached code trace (a superblock emitted by trace
 * selection). The cache layer is deliberately independent of the guest
 * ISA: it sees opaque trace identities, byte sizes, and module tags, so
 * the same cache code serves both live execution (src/runtime) and
 * trace-driven simulation (src/sim), exactly like the paper's
 * DynamoRIO-log-driven cache simulator.
 */

#ifndef GENCACHE_CODECACHE_FRAGMENT_H
#define GENCACHE_CODECACHE_FRAGMENT_H

#include <cstdint>
#include <string_view>

#include "support/units.h"

namespace gencache::cache {

/** Identity of a code trace, stable across eviction and regeneration. */
using TraceId = std::uint64_t;

/** Sentinel for "no trace". */
constexpr TraceId kInvalidTrace = ~0ULL;

/** Module tag used for program-forced eviction (unmapped memory). */
using ModuleId = std::uint32_t;

/** Sentinel for "no module". */
constexpr ModuleId kNoModule = ~0U;

/**
 * Process-independent identity of a module's code image (a stable
 * hash of its name/version). Two guest processes that map the same
 * DLL agree on its ModuleUid even though their process-local
 * ModuleIds differ — the property the cross-process shared code
 * store keys on.
 */
using ModuleUid = std::uint32_t;

/** Sentinel for "no shared identity" (private/anonymous code). */
constexpr ModuleUid kNoModuleUid = ~0U;

/**
 * Uid of the module named @p name: FNV-1a over the name, so every
 * process derives the same uid for "user32.dll" without coordination
 * (a stand-in for hashing the image's bytes/version). Never returns
 * kNoModuleUid.
 */
constexpr ModuleUid moduleUidOfName(std::string_view name)
{
    std::uint32_t hash = 2166136261u;
    for (char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 16777619u;
    }
    return hash == kNoModuleUid ? hash - 1 : hash;
}

/**
 * Canonical trace identity: (module uid, module-relative code
 * offset) packed into one TraceId, uid in the high 32 bits. Unlike a
 * process-local sequence number, the canonical id names *the same
 * trace* in every process that maps the module, which is what lets a
 * shared tier deduplicate traces across a fleet. The packing keeps
 * TraceId an opaque uint64 everywhere ids are stored or hashed.
 */
struct TraceKey
{
    ModuleUid module = kNoModuleUid;
    std::uint32_t offset = 0;

    constexpr TraceId pack() const
    {
        return (static_cast<TraceId>(module) << 32) | offset;
    }

    static constexpr TraceKey unpack(TraceId id)
    {
        return TraceKey{static_cast<ModuleUid>(id >> 32),
                        static_cast<std::uint32_t>(id)};
    }

    constexpr bool operator==(const TraceKey &other) const
    {
        return module == other.module && offset == other.offset;
    }
};

/** @return the packed canonical id for @p uid / @p offset. */
constexpr TraceId canonicalTraceId(ModuleUid uid, std::uint32_t offset)
{
    return TraceKey{uid, offset}.pack();
}

/** @return the module uid packed into canonical id @p id. */
constexpr ModuleUid traceIdUid(TraceId id)
{
    return static_cast<ModuleUid>(id >> 32);
}

/** @return the module-relative offset packed into canonical @p id. */
constexpr std::uint32_t traceIdOffset(TraceId id)
{
    return static_cast<std::uint32_t>(id);
}

/** Which cache of the hierarchy a fragment lives in.
 *
 *  The first four labels are the paper's fixed roles; Tier1..Tier6
 *  label the middle tiers of deeper pipeline topologies
 *  (tier_pipeline.h), where the first tier is always the Nursery and
 *  the last tier always the Persistent cache. */
enum class Generation : std::uint8_t {
    Unified,    ///< the single cache of a non-generational manager
    Nursery,    ///< newly created traces (paper §5)
    Probation,  ///< victim filter between nursery and persistent
    Persistent, ///< long-lived traces
    Tier1,      ///< middle tier #1 of a >3-tier pipeline
    Tier2,      ///< middle tier #2
    Tier3,      ///< middle tier #3
    Tier4,      ///< middle tier #4
    Tier5,      ///< middle tier #5
    Tier6,      ///< middle tier #6
    Shared,     ///< cross-process shared store (tier_pipeline mount)
};

/** @return a short printable name for @p gen. */
const char *generationName(Generation gen);

/** Why a fragment left a cache. */
enum class EvictReason : std::uint8_t {
    Capacity,      ///< displaced by the local replacement policy
    Unmap,         ///< program-forced: its module was unmapped
    Flush,         ///< whole-cache flush
    PromotionMove, ///< moved to an older generation (not a deletion)
    Rejected,      ///< left probation without earning promotion
};

/** @return a short printable name for @p reason. */
const char *evictReasonName(EvictReason reason);

/** @return true when @p reason destroys the cached code (the trace
 *  must be regenerated if executed again). */
bool isDeletion(EvictReason reason);

/** One cached code trace. Plain value type owned by its cache. */
struct Fragment
{
    TraceId id = kInvalidTrace;
    std::uint32_t sizeBytes = 0;
    ModuleId module = kNoModule;
    bool pinned = false;          ///< undeletable (paper §4.2)
    std::uint8_t rrpv = 0;        ///< RRIP re-reference prediction
    std::uint32_t accessCount = 0; ///< hits while in probation
    TimeUs insertTime = 0;         ///< when it entered its current cache
    TimeUs lastAccess = 0;         ///< policy clock (temperature decay)
    std::uint64_t addr = 0;        ///< offset within its cache region
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_FRAGMENT_H
