#include "codecache/local_cache.h"

#include "codecache/list_cache.h"
#include "codecache/pseudo_circular_cache.h"
#include "support/logging.h"

namespace gencache::cache {

void
LocalCache::touch(TraceId id, TimeUs now)
{
    (void)id;
    (void)now;
}

std::size_t
LocalCache::removeModule(ModuleId module, std::vector<Fragment> &out)
{
    std::vector<TraceId> victims;
    forEach([&](const Fragment &frag) {
        if (frag.module == module) {
            victims.push_back(frag.id);
        }
    });
    for (TraceId id : victims) {
        Fragment removed;
        remove(id, &removed);
        out.push_back(removed);
    }
    return victims.size();
}

bool
localPolicyObservesTouch(LocalPolicy policy)
{
    switch (policy) {
      case LocalPolicy::PseudoCircular:
      case LocalPolicy::Fifo:
      case LocalPolicy::PreemptiveFlush:
      case LocalPolicy::Unbounded:
        return false;
      case LocalPolicy::Lru:
      case LocalPolicy::Srrip:
      case LocalPolicy::Brrip:
        return true;
    }
    GENCACHE_PANIC("unknown local policy {}", static_cast<int>(policy));
}

std::unique_ptr<LocalCache>
makeLocalCache(LocalPolicy policy, std::uint64_t capacity)
{
    switch (policy) {
      case LocalPolicy::PseudoCircular:
        return std::make_unique<PseudoCircularCache>(capacity);
      case LocalPolicy::Fifo:
        return std::make_unique<FifoCache>(capacity);
      case LocalPolicy::Lru:
        return std::make_unique<LruCache>(capacity);
      case LocalPolicy::PreemptiveFlush:
        return std::make_unique<FlushCache>(capacity);
      case LocalPolicy::Unbounded:
        return std::make_unique<UnboundedCache>();
      case LocalPolicy::Srrip:
        return std::make_unique<RripCache>(capacity, /*bimodal=*/false);
      case LocalPolicy::Brrip:
        return std::make_unique<RripCache>(capacity, /*bimodal=*/true);
    }
    GENCACHE_PANIC("unknown local policy {}", static_cast<int>(policy));
}

} // namespace gencache::cache
