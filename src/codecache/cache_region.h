/**
 * @file
 * Byte-granular model of one contiguous code cache region with the
 * paper's pseudo-circular placement policy (§4.3).
 *
 * Fragments of varying sizes are laid out at concrete byte offsets. A
 * single allocation pointer marks both the insertion point and the next
 * eviction victim, exactly as in a circular buffer. The policy deviates
 * from a pure circular buffer in two ways the paper identifies:
 *
 *  - *Undeletable (pinned) traces*: when a pinned fragment appears among
 *    the eviction candidates, the pointer resets to just after the
 *    pinned fragment and the eviction scan restarts there.
 *  - *Program-forced evictions*: removals due to unmapped memory leave
 *    holes wherever they occur; the circular sweep reclaims them when
 *    the pointer passes by (holes are never filled out of order).
 *
 * When an incoming fragment does not fit between the pointer and the
 * region end, the unpinned occupants of that tail are evicted (they are
 * the oldest survivors there), the tail bytes are counted as wrap waste,
 * and placement continues from offset zero.
 *
 * Storage is a rotated pair of address-sorted flat vectors rather than
 * a node-based tree: below_ holds fragments at offsets below the
 * pointer (ascending), above_ holds fragments at or past the pointer
 * (descending, so the next eviction candidate is back()). Because the
 * pointer only moves forward, placement and eviction both operate at
 * the vector ends — O(1) amortized per fragment, no per-fragment node
 * allocations — and the id index stores each fragment's position in
 * its half, so lookups are O(1) array reads. One O(n) rotation per
 * lap of the region keeps the pair's invariant when the pointer wraps
 * to zero.
 */

#ifndef GENCACHE_CODECACHE_CACHE_REGION_H
#define GENCACHE_CODECACHE_CACHE_REGION_H

#include <cstdint>
#include <functional>
#include <vector>

#include "codecache/fragment.h"
#include "codecache/trace_index.h"

namespace gencache::cache {

/** Fragmentation snapshot of a region (see Region::fragmentation). */
struct FragmentationInfo
{
    std::uint64_t freeBytes = 0;        ///< total unoccupied bytes
    std::uint64_t freeExtents = 0;      ///< number of free gaps
    std::uint64_t largestFreeExtent = 0; ///< size of the largest gap
    /** 1 - largest/total free; 0 when free space is one extent. */
    double index() const;
};

/** One contiguous code cache storage area. */
class CacheRegion
{
  public:
    /** Index entry of a resident fragment: its placed byte offset
     *  plus its current position in whichever half vector holds it
     *  (below_ when addr < pointer_, above_ otherwise). The position
     *  makes find() O(1); every mutation of the halves keeps it
     *  current. */
    struct AddrEntry
    {
        std::uint64_t addr = 0;
        std::uint32_t pos = 0;
    };

    /** @param capacity region size in bytes; must be positive. */
    explicit CacheRegion(std::uint64_t capacity);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t usedBytes() const { return usedBytes_; }
    std::uint64_t freeBytes() const { return capacity_ - usedBytes_; }
    std::size_t fragmentCount() const
    {
        return below_.size() + above_.size();
    }

    /** Current allocation/eviction pointer offset. */
    std::uint64_t pointer() const { return pointer_; }

    /** Switch the id index to dense storage for ids in
     *  [0, @p id_bound); only legal while the region is empty. */
    void reserveDenseIds(std::uint64_t id_bound)
    {
        addrOf_.reserveDense(id_bound);
    }

    /**
     * Place @p frag using pseudo-circular replacement.
     *
     * @param frag fragment to insert (its addr field is overwritten).
     * @param evicted receives capacity victims, in eviction order.
     * @retval true on success.
     * @retval false when the fragment cannot be placed: larger than the
     *         region, or pinned fragments block every candidate window.
     *         @p evicted is untouched on failure.
     */
    bool place(Fragment frag, std::vector<Fragment> &evicted);

    /** Remove the fragment with identity @p id (program-forced).
     *  @param out receives the removed fragment when non-null.
     *  @return true when the fragment was present. */
    bool remove(TraceId id, Fragment *out = nullptr);

    /** Remove every fragment of @p module in one pass, appending them
     *  to @p out in forEach() (address) order. Equivalent to — but
     *  O(n) instead of O(n * removed) — collecting the ids via
     *  forEach() and calling remove() on each. @return the number of
     *  fragments removed. */
    std::size_t removeModule(ModuleId module,
                             std::vector<Fragment> &out);

    /** @return the resident fragment with identity @p id, or nullptr. */
    Fragment *find(TraceId id);
    const Fragment *find(TraceId id) const;

    /** Mark/unmark the fragment undeletable.
     *  @return false when the fragment is not resident. */
    bool setPinned(TraceId id, bool pinned);

    /** Remove every unpinned fragment, appending them to @p evicted,
     *  and reset the pointer to zero. */
    void flush(std::vector<Fragment> &evicted);

    /** Visit all resident fragments in address order. */
    void forEach(const std::function<void(const Fragment &)> &fn) const;

    /** @return a snapshot of the current free-space fragmentation. */
    FragmentationInfo fragmentation() const;

    /** Bytes abandoned at the region tail across all wraps so far. */
    std::uint64_t wrapWasteBytes() const { return wrapWasteBytes_; }

    /** Number of pointer resets caused by pinned fragments. */
    std::uint64_t pinnedSkips() const { return pinnedSkips_; }

    /** Internal consistency check (test support): verifies that the
     *  split vectors are sorted, agree with the id index, and no
     *  fragments overlap. Panics on violation. */
    void validate() const;

    /// @name Introspection for the static checker (src/analysis).
    /// The checker re-derives every invariant from this raw state and
    /// reports diagnostics instead of panicking.
    /// @{
    /** Fragments at offsets below the pointer, ascending address. */
    const std::vector<Fragment> &belowHalf() const { return below_; }
    /** Fragments at/past the pointer, descending address. */
    const std::vector<Fragment> &aboveHalf() const { return above_; }
    /** Identity -> placed offset (and half position) index. */
    const TraceIndex<AddrEntry> &addrIndex() const
    {
        return addrOf_;
    }
    /** Number of resident fragments tracked as pinned. */
    std::size_t pinnedResidentCount() const { return pinnedCount_; }
    /// @}

  private:
    /** @return the first pinned fragment intersecting [begin, end) in
     *  address order, setting @p blocker to its end offset; or false
     *  when the window is clear of pinned fragments. O(1) when no
     *  pinned fragment is resident. */
    bool pinnedIn(std::uint64_t begin, std::uint64_t end,
                  std::uint64_t &blocker) const;

    /** Move everything into above_ (descending) and empty below_,
     *  re-establishing the invariant for pointer_ == 0. */
    void rotateToZero();

    /** Remove @p frag's bookkeeping and append it to @p evicted. */
    void emitVictim(const Fragment &frag, std::vector<Fragment> &evicted);

    std::uint64_t capacity_;
    std::uint64_t pointer_ = 0;
    std::uint64_t usedBytes_ = 0;
    std::uint64_t wrapWasteBytes_ = 0;
    std::uint64_t pinnedSkips_ = 0;
    std::size_t pinnedCount_ = 0;
    /** Reassign the indexed positions of @p half[@p from...]. */
    void reindexFrom(const std::vector<Fragment> &half,
                     std::size_t from);

    std::vector<Fragment> below_; ///< addr < pointer_, ascending addr
    std::vector<Fragment> above_; ///< addr >= pointer_, descending addr
    TraceIndex<AddrEntry> addrOf_;
};

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_CACHE_REGION_H
