#include "codecache/cache_region.h"

#include "support/logging.h"

namespace gencache::cache {

double
FragmentationInfo::index() const
{
    if (freeBytes == 0) {
        return 0.0;
    }
    return 1.0 - static_cast<double>(largestFreeExtent) /
                     static_cast<double>(freeBytes);
}

CacheRegion::CacheRegion(std::uint64_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0) {
        GENCACHE_PANIC("CacheRegion capacity must be positive");
    }
}

bool
CacheRegion::scanRange(std::uint64_t begin, std::uint64_t end,
                       std::vector<TraceId> &victims,
                       std::uint64_t &blocker) const
{
    victims.clear();
    auto it = byAddr_.upper_bound(begin);
    if (it != byAddr_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.sizeBytes > begin) {
            it = prev;
        }
    }
    for (; it != byAddr_.end() && it->first < end; ++it) {
        if (it->second.pinned) {
            blocker = it->first + it->second.sizeBytes;
            return false;
        }
        victims.push_back(it->second.id);
    }
    return true;
}

void
CacheRegion::evictIds(const std::vector<TraceId> &victims,
                      std::vector<Fragment> &evicted)
{
    for (TraceId id : victims) {
        auto addr_it = addrOf_.find(id);
        if (addr_it == addrOf_.end()) {
            GENCACHE_PANIC("evicting absent fragment {}", id);
        }
        auto frag_it = byAddr_.find(addr_it->second);
        evicted.push_back(frag_it->second);
        usedBytes_ -= frag_it->second.sizeBytes;
        byAddr_.erase(frag_it);
        addrOf_.erase(addr_it);
    }
}

bool
CacheRegion::place(Fragment frag, std::vector<Fragment> &evicted)
{
    if (frag.sizeBytes == 0) {
        GENCACHE_PANIC("placing zero-sized fragment {}", frag.id);
    }
    if (addrOf_.count(frag.id) != 0) {
        GENCACHE_PANIC("fragment {} already resident", frag.id);
    }
    if (frag.sizeBytes > capacity_) {
        return false;
    }

    // Plan phase: read-only search for a placement window. Nothing is
    // modified until the plan succeeds, so failure leaves the region
    // untouched.
    std::vector<TraceId> planned;
    std::vector<TraceId> scratch;
    std::uint64_t waste = 0;
    std::uint64_t skips = 0;
    std::uint64_t p = pointer_;
    unsigned wraps = 0;

    while (true) {
        std::uint64_t blocker = 0;
        if (p + frag.sizeBytes > capacity_) {
            if (wraps >= 1) {
                // Second wrap: a full circle found no window.
                return false;
            }
            if (!scanRange(p, capacity_, scratch, blocker)) {
                ++skips;
                p = blocker;
                continue;
            }
            planned.insert(planned.end(), scratch.begin(),
                           scratch.end());
            waste += capacity_ - p;
            p = 0;
            ++wraps;
            continue;
        }
        if (!scanRange(p, p + frag.sizeBytes, scratch, blocker)) {
            ++skips;
            p = blocker;
            continue;
        }
        planned.insert(planned.end(), scratch.begin(), scratch.end());
        break;
    }

    // Commit phase. A wrap scan and a post-wrap scan can both select
    // the same fragment when pinned skips push the window forward, so
    // deduplicate while preserving eviction order.
    std::vector<TraceId> unique_victims;
    unique_victims.reserve(planned.size());
    for (TraceId id : planned) {
        bool seen = false;
        for (TraceId prior : unique_victims) {
            if (prior == id) {
                seen = true;
                break;
            }
        }
        if (!seen) {
            unique_victims.push_back(id);
        }
    }
    evictIds(unique_victims, evicted);
    frag.addr = p;
    addrOf_.emplace(frag.id, p);
    usedBytes_ += frag.sizeBytes;
    byAddr_.emplace(p, frag);
    pointer_ = p + frag.sizeBytes;
    if (pointer_ >= capacity_) {
        pointer_ = 0;
    }
    wrapWasteBytes_ += waste;
    pinnedSkips_ += skips;
    return true;
}

bool
CacheRegion::remove(TraceId id, Fragment *out)
{
    auto addr_it = addrOf_.find(id);
    if (addr_it == addrOf_.end()) {
        return false;
    }
    auto frag_it = byAddr_.find(addr_it->second);
    if (out != nullptr) {
        *out = frag_it->second;
    }
    usedBytes_ -= frag_it->second.sizeBytes;
    byAddr_.erase(frag_it);
    addrOf_.erase(addr_it);
    return true;
}

Fragment *
CacheRegion::find(TraceId id)
{
    auto addr_it = addrOf_.find(id);
    if (addr_it == addrOf_.end()) {
        return nullptr;
    }
    return &byAddr_.find(addr_it->second)->second;
}

const Fragment *
CacheRegion::find(TraceId id) const
{
    auto addr_it = addrOf_.find(id);
    if (addr_it == addrOf_.end()) {
        return nullptr;
    }
    return &byAddr_.find(addr_it->second)->second;
}

bool
CacheRegion::setPinned(TraceId id, bool pinned)
{
    Fragment *frag = find(id);
    if (frag == nullptr) {
        return false;
    }
    frag->pinned = pinned;
    return true;
}

void
CacheRegion::flush(std::vector<Fragment> &evicted)
{
    std::vector<TraceId> victims;
    victims.reserve(byAddr_.size());
    for (const auto &[addr, frag] : byAddr_) {
        if (!frag.pinned) {
            victims.push_back(frag.id);
        }
    }
    evictIds(victims, evicted);
    pointer_ = 0;
}

void
CacheRegion::forEach(
    const std::function<void(const Fragment &)> &fn) const
{
    for (const auto &[addr, frag] : byAddr_) {
        fn(frag);
    }
}

FragmentationInfo
CacheRegion::fragmentation() const
{
    FragmentationInfo info;
    info.freeBytes = freeBytes();
    std::uint64_t cursor = 0;
    auto note_gap = [&](std::uint64_t gap) {
        if (gap > 0) {
            ++info.freeExtents;
            if (gap > info.largestFreeExtent) {
                info.largestFreeExtent = gap;
            }
        }
    };
    for (const auto &[addr, frag] : byAddr_) {
        note_gap(addr - cursor);
        cursor = addr + frag.sizeBytes;
    }
    note_gap(capacity_ - cursor);
    return info;
}

void
CacheRegion::validate() const
{
    std::uint64_t cursor = 0;
    std::uint64_t used = 0;
    for (const auto &[addr, frag] : byAddr_) {
        if (addr != frag.addr) {
            GENCACHE_PANIC("fragment {} addr mismatch: {} vs {}",
                           frag.id, addr, frag.addr);
        }
        if (addr < cursor) {
            GENCACHE_PANIC("fragment {} overlaps its predecessor",
                           frag.id);
        }
        if (addr + frag.sizeBytes > capacity_) {
            GENCACHE_PANIC("fragment {} exceeds region capacity",
                           frag.id);
        }
        auto addr_it = addrOf_.find(frag.id);
        if (addr_it == addrOf_.end() || addr_it->second != addr) {
            GENCACHE_PANIC("fragment {} index entry missing or stale",
                           frag.id);
        }
        cursor = addr + frag.sizeBytes;
        used += frag.sizeBytes;
    }
    if (used != usedBytes_) {
        GENCACHE_PANIC("usedBytes {} != sum of fragments {}",
                       usedBytes_, used);
    }
    if (addrOf_.size() != byAddr_.size()) {
        GENCACHE_PANIC("index size {} != fragment count {}",
                       addrOf_.size(), byAddr_.size());
    }
    if (pointer_ >= capacity_) {
        GENCACHE_PANIC("pointer {} outside region of {} bytes",
                       pointer_, capacity_);
    }
}

} // namespace gencache::cache
