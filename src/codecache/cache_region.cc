#include "codecache/cache_region.h"

#include <algorithm>

#include "support/logging.h"

namespace gencache::cache {

double
FragmentationInfo::index() const
{
    if (freeBytes == 0) {
        return 0.0;
    }
    return 1.0 - static_cast<double>(largestFreeExtent) /
                     static_cast<double>(freeBytes);
}

CacheRegion::CacheRegion(std::uint64_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0) {
        GENCACHE_PANIC("CacheRegion capacity must be positive");
    }
}

bool
CacheRegion::pinnedIn(std::uint64_t begin, std::uint64_t end,
                      std::uint64_t &blocker) const
{
    if (pinnedCount_ == 0) {
        return false;
    }
    // Ascending address order: the below-half first (it can only
    // intersect when the window starts under the pointer; no resident
    // fragment straddles the pointer), then the above-half from its
    // back.
    if (begin < pointer_) {
        auto it = std::upper_bound(
            below_.begin(), below_.end(), begin,
            [](std::uint64_t a, const Fragment &frag) {
                return a < frag.addr;
            });
        if (it != below_.begin() &&
            std::prev(it)->addr + std::prev(it)->sizeBytes > begin) {
            --it;
        }
        for (; it != below_.end() && it->addr < end; ++it) {
            if (it->pinned) {
                blocker = it->addr + it->sizeBytes;
                return true;
            }
        }
    }
    auto first_clear = std::partition_point(
        above_.begin(), above_.end(), [begin](const Fragment &frag) {
            return frag.addr + frag.sizeBytes > begin;
        });
    for (std::size_t i = static_cast<std::size_t>(
             first_clear - above_.begin());
         i-- > 0;) {
        const Fragment &frag = above_[i];
        if (frag.addr >= end) {
            break;
        }
        if (frag.pinned) {
            blocker = frag.addr + frag.sizeBytes;
            return true;
        }
    }
    return false;
}

void
CacheRegion::reindexFrom(const std::vector<Fragment> &half,
                         std::size_t from)
{
    for (std::size_t i = from; i < half.size(); ++i) {
        addrOf_.set(half[i].id,
                    AddrEntry{half[i].addr,
                              static_cast<std::uint32_t>(i)});
    }
}

void
CacheRegion::rotateToZero()
{
    // The above-half is always fully drained before the pointer laps,
    // so rotation is just moving the current lap into eviction order.
    if (!above_.empty()) {
        GENCACHE_PANIC("rotating a region with {} stale fragments",
                       above_.size());
    }
    above_.insert(above_.end(), below_.rbegin(), below_.rend());
    below_.clear();
    reindexFrom(above_, 0);
}

void
CacheRegion::emitVictim(const Fragment &frag,
                        std::vector<Fragment> &evicted)
{
    evicted.push_back(frag);
    usedBytes_ -= frag.sizeBytes;
    addrOf_.erase(frag.id);
}

bool
CacheRegion::place(Fragment frag, std::vector<Fragment> &evicted)
{
    if (frag.sizeBytes == 0) {
        GENCACHE_PANIC("placing zero-sized fragment {}", frag.id);
    }
    if (addrOf_.contains(frag.id)) {
        GENCACHE_PANIC("fragment {} already resident", frag.id);
    }
    if (frag.sizeBytes > capacity_) {
        return false;
    }

    // Plan phase: read-only search for a placement window. Nothing is
    // modified until the plan succeeds, so failure leaves the region
    // untouched.
    std::uint64_t waste = 0;
    std::uint64_t skips = 0;
    std::uint64_t p = pointer_;
    std::uint64_t tail_start = 0;
    bool wrapped = false;

    while (true) {
        std::uint64_t blocker = 0;
        if (p + frag.sizeBytes > capacity_) {
            if (wrapped) {
                // Second wrap: a full circle found no window.
                return false;
            }
            if (pinnedIn(p, capacity_, blocker)) {
                ++skips;
                p = blocker;
                continue;
            }
            tail_start = p;
            waste += capacity_ - p;
            p = 0;
            wrapped = true;
            continue;
        }
        if (pinnedIn(p, p + frag.sizeBytes, blocker)) {
            ++skips;
            p = blocker;
            continue;
        }
        break;
    }

    const std::uint64_t window_begin = p;
    const std::uint64_t window_end = p + frag.sizeBytes;

    // Commit phase. Eviction candidates are exactly the fragments at
    // the back of the above-half (circular address order after the
    // pointer); fragments the plan skipped over survive into the new
    // lap. A tail victim can also intersect the post-wrap window; it
    // is evicted once here, in tail-scan order, matching the planned
    // eviction order.
    if (wrapped) {
        while (!above_.empty()) {
            const Fragment &back = above_.back();
            if (back.addr + back.sizeBytes > tail_start) {
                emitVictim(back, evicted);
            } else {
                below_.push_back(back);
            }
            above_.pop_back();
        }
        rotateToZero();
    }
    while (!above_.empty() && above_.back().addr < window_end) {
        const Fragment &back = above_.back();
        if (back.addr + back.sizeBytes > window_begin) {
            emitVictim(back, evicted);
        } else {
            addrOf_.set(back.id,
                        AddrEntry{back.addr, static_cast<std::uint32_t>(
                                                 below_.size())});
            below_.push_back(back);
        }
        above_.pop_back();
    }

    frag.addr = window_begin;
    addrOf_.insert(frag.id,
                   AddrEntry{frag.addr,
                             static_cast<std::uint32_t>(below_.size())});
    usedBytes_ += frag.sizeBytes;
    if (frag.pinned) {
        ++pinnedCount_;
    }
    below_.push_back(frag);
    pointer_ = window_end;
    if (pointer_ >= capacity_) {
        pointer_ = 0;
        rotateToZero();
    }
    wrapWasteBytes_ += waste;
    pinnedSkips_ += skips;
    return true;
}

bool
CacheRegion::remove(TraceId id, Fragment *out)
{
    const AddrEntry *found = addrOf_.find(id);
    if (found == nullptr) {
        return false;
    }
    std::vector<Fragment> &half =
        found->addr < pointer_ ? below_ : above_;
    const std::size_t pos = found->pos;
    auto frag_it = half.begin() +
                   static_cast<std::vector<Fragment>::difference_type>(
                       pos);
    if (out != nullptr) {
        *out = *frag_it;
    }
    usedBytes_ -= frag_it->sizeBytes;
    if (frag_it->pinned) {
        --pinnedCount_;
    }
    half.erase(frag_it);
    addrOf_.erase(id);
    reindexFrom(half, pos);
    return true;
}

std::size_t
CacheRegion::removeModule(ModuleId module, std::vector<Fragment> &out)
{
    const std::size_t before = out.size();
    for (const Fragment &frag : below_) {
        if (frag.module == module) {
            out.push_back(frag);
        }
    }
    for (auto it = above_.rbegin(); it != above_.rend(); ++it) {
        if (it->module == module) {
            out.push_back(*it);
        }
    }
    const std::size_t removed = out.size() - before;
    if (removed == 0) {
        return 0;
    }
    auto prune = [&](std::vector<Fragment> &half) {
        std::size_t write = 0;
        for (std::size_t read = 0; read < half.size(); ++read) {
            const Fragment &frag = half[read];
            if (frag.module == module) {
                usedBytes_ -= frag.sizeBytes;
                if (frag.pinned) {
                    --pinnedCount_;
                }
                addrOf_.erase(frag.id);
                continue;
            }
            if (write != read) {
                half[write] = frag;
            }
            ++write;
        }
        half.resize(write);
        reindexFrom(half, 0);
    };
    prune(below_);
    prune(above_);
    return removed;
}

Fragment *
CacheRegion::find(TraceId id)
{
    const AddrEntry *found = addrOf_.find(id);
    if (found == nullptr) {
        return nullptr;
    }
    return found->addr < pointer_ ? &below_[found->pos]
                                  : &above_[found->pos];
}

const Fragment *
CacheRegion::find(TraceId id) const
{
    return const_cast<CacheRegion *>(this)->find(id);
}

bool
CacheRegion::setPinned(TraceId id, bool pinned)
{
    Fragment *frag = find(id);
    if (frag == nullptr) {
        return false;
    }
    if (frag->pinned != pinned) {
        pinnedCount_ += pinned ? 1 : -1;
    }
    frag->pinned = pinned;
    return true;
}

void
CacheRegion::flush(std::vector<Fragment> &evicted)
{
    std::vector<Fragment> kept;
    auto sweep = [&](const Fragment &frag) {
        if (frag.pinned) {
            kept.push_back(frag);
        } else {
            emitVictim(frag, evicted);
        }
    };
    for (const Fragment &frag : below_) {
        sweep(frag);
    }
    for (auto it = above_.rbegin(); it != above_.rend(); ++it) {
        sweep(*it);
    }
    below_.clear();
    above_.assign(kept.rbegin(), kept.rend());
    reindexFrom(above_, 0);
    pointer_ = 0;
}

void
CacheRegion::forEach(
    const std::function<void(const Fragment &)> &fn) const
{
    for (const Fragment &frag : below_) {
        fn(frag);
    }
    for (auto it = above_.rbegin(); it != above_.rend(); ++it) {
        fn(*it);
    }
}

FragmentationInfo
CacheRegion::fragmentation() const
{
    FragmentationInfo info;
    info.freeBytes = freeBytes();
    std::uint64_t cursor = 0;
    auto note_gap = [&](std::uint64_t gap) {
        if (gap > 0) {
            ++info.freeExtents;
            if (gap > info.largestFreeExtent) {
                info.largestFreeExtent = gap;
            }
        }
    };
    forEach([&](const Fragment &frag) {
        note_gap(frag.addr - cursor);
        cursor = frag.addr + frag.sizeBytes;
    });
    note_gap(capacity_ - cursor);
    return info;
}

void
CacheRegion::validate() const
{
    std::uint64_t cursor = 0;
    std::uint64_t used = 0;
    std::size_t pinned = 0;
    std::size_t visited = 0;
    forEach([&](const Fragment &frag) {
        bool in_below = frag.addr < pointer_;
        ++visited;
        if (in_below && visited > below_.size()) {
            GENCACHE_PANIC("fragment {} below the pointer stored in "
                           "the above-half", frag.id);
        }
        if (!in_below && visited <= below_.size()) {
            GENCACHE_PANIC("fragment {} past the pointer stored in "
                           "the below-half", frag.id);
        }
        if (frag.addr < cursor) {
            GENCACHE_PANIC("fragment {} overlaps its predecessor",
                           frag.id);
        }
        if (frag.addr + frag.sizeBytes > capacity_) {
            GENCACHE_PANIC("fragment {} exceeds region capacity",
                           frag.id);
        }
        const AddrEntry *indexed = addrOf_.find(frag.id);
        if (indexed == nullptr || indexed->addr != frag.addr) {
            GENCACHE_PANIC("fragment {} index entry missing or stale",
                           frag.id);
        }
        const std::vector<Fragment> &half =
            in_below ? below_ : above_;
        if (indexed->pos >= half.size() ||
            half[indexed->pos].id != frag.id) {
            GENCACHE_PANIC("fragment {} indexed position is stale",
                           frag.id);
        }
        cursor = frag.addr + frag.sizeBytes;
        used += frag.sizeBytes;
        if (frag.pinned) {
            ++pinned;
        }
    });
    if (used != usedBytes_) {
        GENCACHE_PANIC("usedBytes {} != sum of fragments {}",
                       usedBytes_, used);
    }
    if (addrOf_.size() != fragmentCount()) {
        GENCACHE_PANIC("index size {} != fragment count {}",
                       addrOf_.size(), fragmentCount());
    }
    if (pinned != pinnedCount_) {
        GENCACHE_PANIC("pinned count {} != tracked {}", pinned,
                       pinnedCount_);
    }
    if (pointer_ >= capacity_) {
        GENCACHE_PANIC("pointer {} outside region of {} bytes",
                       pointer_, capacity_);
    }
}

} // namespace gencache::cache
