/**
 * @file
 * Local code cache management (paper §4): the replacement policy that
 * governs a single cache.
 *
 * All local caches share one interface so global managers (unified or
 * generational, §5) can be composed with any local policy — the paper
 * assumes pseudo-circular locally but explicitly leaves other local
 * policies as an open question, which our ablation bench explores.
 */

#ifndef GENCACHE_CODECACHE_LOCAL_CACHE_H
#define GENCACHE_CODECACHE_LOCAL_CACHE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "codecache/fragment.h"

namespace gencache::cache {

/** Bookkeeping every local cache maintains. */
struct LocalCacheStats
{
    std::uint64_t inserts = 0;
    std::uint64_t insertedBytes = 0;
    std::uint64_t capacityEvictions = 0;
    std::uint64_t capacityEvictedBytes = 0;
    std::uint64_t removals = 0;     ///< remove() calls (unmap or
                                    ///< promotion moves)
    std::uint64_t removedBytes = 0;
    std::uint64_t flushes = 0;
    std::uint64_t placementFailures = 0;
};

/** Replacement policy of a single code cache. */
class LocalCache
{
  public:
    /** @param capacity cache size in bytes (0 = unbounded). */
    explicit LocalCache(std::uint64_t capacity) : capacity_(capacity) {}

    virtual ~LocalCache() = default;

    LocalCache(const LocalCache &) = delete;
    LocalCache &operator=(const LocalCache &) = delete;

    /** Cache size in bytes; 0 means unbounded. */
    std::uint64_t capacity() const { return capacity_; }

    /** @return short policy name, e.g. "pseudo-circular". */
    virtual const char *policyName() const = 0;

    virtual std::uint64_t usedBytes() const = 0;
    virtual std::size_t fragmentCount() const = 0;

    /**
     * Insert @p frag, evicting victims per the policy.
     *
     * @param frag the fragment to insert; must not be resident.
     * @param evicted receives the capacity victims in eviction order.
     * @return false when placement failed (fragment too large or
     *         pinned congestion); the cache is unchanged then.
     */
    virtual bool insert(const Fragment &frag,
                        std::vector<Fragment> &evicted) = 0;

    /** @return the resident fragment, or nullptr. */
    virtual Fragment *find(TraceId id) = 0;

    /** @return true when @p id is resident. */
    virtual bool contains(TraceId id) const = 0;

    /** Notify the policy of an access (recency-based policies). */
    virtual void touch(TraceId id, TimeUs now);

    /** Hot-path hint: true when the policy overrides touch(), so
     *  managers can skip the virtual call on hit for the others. */
    bool observesTouch() const { return observesTouch_; }

    /** Dense-id declaration forwarded by the global manager (see
     *  CacheManager::prepareDenseIds). Default: no-op. */
    virtual void reserveDenseIds(std::uint64_t id_bound)
    {
        (void)id_bound;
    }

    /** Program-forced removal (unmapped memory). Ignores pinning: the
     *  code is gone regardless.
     *  @param out receives the removed fragment when non-null.
     *  @return true when the fragment was resident. */
    virtual bool remove(TraceId id, Fragment *out = nullptr) = 0;

    /** Remove every fragment of @p module, appending the removed
     *  fragments to @p out in forEach() order. The default collects
     *  via forEach() and calls remove() per fragment; policies whose
     *  per-fragment removal is not O(1) override this with a bulk
     *  pass. @return the number of fragments removed. */
    virtual std::size_t removeModule(ModuleId module,
                                    std::vector<Fragment> &out);

    /** Mark/unmark a resident fragment undeletable.
     *  @return false when not resident. */
    virtual bool setPinned(TraceId id, bool pinned) = 0;

    /** Remove all unpinned fragments into @p evicted. */
    virtual void flush(std::vector<Fragment> &evicted) = 0;

    /** Visit all resident fragments (order unspecified). */
    virtual void forEach(
        const std::function<void(const Fragment &)> &fn) const = 0;

    const LocalCacheStats &stats() const { return stats_; }

  protected:
    /** Policies that override touch() pass observes_touch = true. */
    LocalCache(std::uint64_t capacity, bool observes_touch)
        : capacity_(capacity), observesTouch_(observes_touch)
    {
    }

    std::uint64_t capacity_;
    LocalCacheStats stats_;

  private:
    bool observesTouch_ = false;
};

/** Local replacement policies available to the factory. */
enum class LocalPolicy {
    PseudoCircular, ///< address-accurate FIFO with pinned skip (§4.3)
    Fifo,           ///< idealized FIFO queue (no layout modeling)
    Lru,            ///< least-recently-used
    PreemptiveFlush, ///< flush everything when full (Dynamo-style)
    Unbounded,      ///< never evicts; tracks peak occupancy
    Srrip,          ///< static re-reference interval prediction
    Brrip,          ///< bimodal RRIP (mostly-distant insertion)
};

/** @return short printable name of @p policy. */
const char *localPolicyName(LocalPolicy policy);

/** @return whether caches of @p policy observe touch() (recency/RRIP
 *  state updated on hit). Static twin of LocalCache::observesTouch()
 *  so the topology linter and the fast-path explainer can answer
 *  eligibility questions without building a cache. */
bool localPolicyObservesTouch(LocalPolicy policy);

/** Create a local cache of @p policy with @p capacity bytes. */
std::unique_ptr<LocalCache> makeLocalCache(LocalPolicy policy,
                                           std::uint64_t capacity);

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_LOCAL_CACHE_H
