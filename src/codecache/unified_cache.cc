#include "codecache/unified_cache.h"

#include "codecache/list_cache.h"
#include "support/format.h"
#include "support/logging.h"

namespace gencache::cache {

UnifiedCacheManager::UnifiedCacheManager(std::uint64_t capacity,
                                         LocalPolicy policy)
    : policy_(capacity == 0 ? LocalPolicy::Unbounded : policy)
{
    cache_ = makeLocalCache(policy_, capacity);
}

std::string
UnifiedCacheManager::name() const
{
    if (policy_ == LocalPolicy::Unbounded) {
        return "unified/unbounded";
    }
    return format("unified/{} ({})", cache_->policyName(),
                  humanBytes(cache_->capacity()));
}

bool
UnifiedCacheManager::lookup(TraceId id, TimeUs now)
{
    ++stats_.lookups;
    Fragment *frag = cache_->find(id);
    if (frag == nullptr) {
        ++stats_.misses;
        if (listener_ != nullptr) {
            listener_->onMiss(id, now);
        }
        return false;
    }
    ++stats_.hits;
    cache_->touch(id, now);
    if (listener_ != nullptr) {
        listener_->onHit(id, Generation::Unified, now);
    }
    return true;
}

bool
UnifiedCacheManager::insert(TraceId id, std::uint32_t size_bytes,
                            ModuleId module, TimeUs now)
{
    if (cache_->find(id) != nullptr) {
        GENCACHE_PANIC("insert of resident trace {}", id);
    }
    Fragment frag;
    frag.id = id;
    frag.sizeBytes = size_bytes;
    frag.module = module;
    frag.insertTime = now;

    std::vector<Fragment> evicted;
    if (!cache_->insert(frag, evicted)) {
        ++stats_.placementFailures;
        return false;
    }
    ++stats_.inserts;
    stats_.insertedBytes += size_bytes;
    for (const Fragment &victim : evicted) {
        ++stats_.deletions;
        stats_.deletedBytes += victim.sizeBytes;
        if (listener_ != nullptr) {
            listener_->onEvict(victim, Generation::Unified,
                               EvictReason::Capacity, now);
        }
    }
    if (listener_ != nullptr) {
        listener_->onInsert(*cache_->find(id), Generation::Unified,
                            now);
    }
    return true;
}

void
UnifiedCacheManager::invalidateModule(ModuleId module, TimeUs now)
{
    std::vector<TraceId> victims;
    cache_->forEach([&](const Fragment &frag) {
        if (frag.module == module) {
            victims.push_back(frag.id);
        }
    });
    for (TraceId id : victims) {
        Fragment removed;
        cache_->remove(id, &removed);
        ++stats_.unmapDeletions;
        stats_.unmapDeletedBytes += removed.sizeBytes;
        if (listener_ != nullptr) {
            listener_->onEvict(removed, Generation::Unified,
                               EvictReason::Unmap, now);
        }
    }
}

bool
UnifiedCacheManager::setPinned(TraceId id, bool pinned)
{
    return cache_->setPinned(id, pinned);
}

bool
UnifiedCacheManager::contains(TraceId id) const
{
    return cache_->contains(id);
}

std::uint64_t
UnifiedCacheManager::totalCapacity() const
{
    return cache_->capacity();
}

std::uint64_t
UnifiedCacheManager::usedBytes() const
{
    return cache_->usedBytes();
}

std::uint64_t
UnifiedCacheManager::peakBytes() const
{
    auto *unbounded = dynamic_cast<const UnboundedCache *>(cache_.get());
    if (unbounded != nullptr) {
        return unbounded->peakBytes();
    }
    return cache_->usedBytes();
}

} // namespace gencache::cache
