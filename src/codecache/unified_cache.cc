#include "codecache/unified_cache.h"

#include "codecache/list_cache.h"
#include "support/format.h"

namespace gencache::cache {

namespace {

TierPipelineInit
unifiedInit(std::uint64_t capacity, LocalPolicy policy)
{
    LocalPolicy effective =
        capacity == 0 ? LocalPolicy::Unbounded : policy;
    TierPipelineInit init;
    init.name = effective == LocalPolicy::Unbounded
                    ? "unified/unbounded"
                    : format("unified/{} ({})",
                             localPolicyName(effective),
                             humanBytes(capacity));
    init.tiers = {TierSpec{capacity, effective}};
    return init;
}

} // namespace

UnifiedCacheManager::UnifiedCacheManager(std::uint64_t capacity,
                                         LocalPolicy policy)
    : TierPipeline(unifiedInit(capacity, policy)),
      policy_(capacity == 0 ? LocalPolicy::Unbounded : policy)
{
}

std::uint64_t
UnifiedCacheManager::peakBytes() const
{
    auto *unbounded = dynamic_cast<const UnboundedCache *>(&local());
    if (unbounded != nullptr) {
        return unbounded->peakBytes();
    }
    return local().usedBytes();
}

} // namespace gencache::cache
