/**
 * @file
 * The composable tier-pipeline cache core.
 *
 * The paper's nursery/probation/persistent hierarchy (§5, Figure 8) is
 * one point in a larger design space: an ordered pipeline of local
 * caches with a *promotion policy* on every inter-tier edge. A
 * TierPipeline is built from
 *
 *   - an ordered vector of TierSpec{capacity, LocalPolicy,
 *     pin handling}, tier 0 receiving all fresh inserts, and
 *   - one PromotionPolicy per edge (tier i -> tier i+1) deciding what
 *     happens to tier i's capacity victims (advance or delete) and
 *     whether a hit upgrades a fragment immediately (§5.3's eager
 *     variant).
 *
 * Figure 8's victim cascade, the TraceIndex residency map, dense-id
 * preparation, module invalidation, pinning, and CacheEventListener
 * emission all live here, once. GenerationalCacheManager and
 * UnifiedCacheManager are thin config-to-pipeline adapters whose stats
 * and event streams are bit-identical to the pre-pipeline monoliths
 * (tests/test_tier_pipeline.cc holds frozen copies to prove it).
 *
 * Tier labels keep the paper's vocabulary: a single tier is Unified,
 * the first tier of a multi-tier pipeline is the Nursery and the last
 * the Persistent cache (so the cost model's §5.4 relocation pricing
 * applies unchanged), with Probation naming the middle of a 3-tier
 * pipeline and Tier1..Tier6 naming the middles of deeper ones.
 */

#ifndef GENCACHE_CODECACHE_TIER_PIPELINE_H
#define GENCACHE_CODECACHE_TIER_PIPELINE_H

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "codecache/cache_manager.h"
#include "codecache/shared_store.h"
#include "codecache/trace_index.h"

namespace gencache::cache {

/** Index of a tier within a pipeline (0 = insertion tier). */
using TierId = std::uint8_t;

/** Deepest supported pipeline. */
constexpr std::size_t kMaxTiers = 8;

/** What happens to a fragment's pin bit when it leaves a tier
 *  upward (promotion or eager upgrade). */
enum class PinHandling : std::uint8_t {
    Sticky, ///< the pin bit survives the move (legacy behavior)
    Shed,   ///< promotion clears the pin bit
};

/** Sizing and policy of one tier. */
struct TierSpec
{
    std::uint64_t capacityBytes = 0;
    LocalPolicy policy = LocalPolicy::PseudoCircular;
    PinHandling pins = PinHandling::Sticky;
};

/** Per-tier counters beyond the local cache stats. */
struct GenerationStats
{
    std::uint64_t hits = 0;
    std::uint64_t promotionsIn = 0;   ///< fragments that moved in
    std::uint64_t promotionsOut = 0;  ///< fragments that moved up
    std::uint64_t deletions = 0;      ///< destroyed while resident here
};

/**
 * Decision logic of one inter-tier edge (tier i -> tier i+1).
 *
 * The pipeline calls onEnter when a fragment enters the edge's source
 * tier, onHit on every lookup hit there (only when observesHits()),
 * and admitOnEviction when the source tier evicts the fragment for
 * capacity. Policies keep their per-fragment state inside the
 * Fragment itself (accessCount, lastAccess) so fragments carry it
 * through relocation for free.
 */
class PromotionPolicy
{
  public:
    virtual ~PromotionPolicy() = default;

    PromotionPolicy(const PromotionPolicy &) = delete;
    PromotionPolicy &operator=(const PromotionPolicy &) = delete;

    /** @return short policy name, e.g. "threshold". */
    virtual const char *name() const = 0;

    /** @p frag entered the edge's source tier (fresh insert or
     *  promotion from below). */
    virtual void onEnter(Fragment &frag, TimeUs now)
    {
        (void)frag;
        (void)now;
    }

    /** A lookup hit @p frag in the source tier. @return true to
     *  upgrade it into the next tier immediately (§5.3's eager
     *  variant). Only called when observesHits(). */
    virtual bool onHit(Fragment &frag, TimeUs now)
    {
        (void)frag;
        (void)now;
        return false;
    }

    /** The source tier evicted @p frag for capacity. @return true to
     *  advance it into the next tier, false to delete it (a
     *  probation-style rejection). */
    virtual bool admitOnEviction(Fragment &frag, TimeUs now) = 0;

    /** Hot-path hint: skip the virtual onHit call on edges whose
     *  policy ignores hits. */
    bool observesHits() const { return observesHits_; }

    /** Hot-path hint: skip the virtual onEnter call on edges whose
     *  policy keeps no per-fragment entry state. */
    bool observesEntry() const { return observesEntry_; }

  protected:
    PromotionPolicy(bool observes_hits, bool observes_entry)
        : observesHits_(observes_hits), observesEntry_(observes_entry)
    {
    }

  private:
    bool observesHits_;
    bool observesEntry_;
};

/** Every capacity victim advances (Figure 8's nursery -> probation
 *  edge: eviction *is* the promotion). */
class AlwaysPromotePolicy : public PromotionPolicy
{
  public:
    AlwaysPromotePolicy() : PromotionPolicy(false, false) {}
    const char *name() const override { return "always-promote"; }
    bool admitOnEviction(Fragment &, TimeUs) override { return true; }
};

/** Every capacity victim is deleted — the edge acts as a hard cutoff
 *  (useful to model a tier whose contents never graduate). */
class AlwaysDeletePolicy : public PromotionPolicy
{
  public:
    AlwaysDeletePolicy() : PromotionPolicy(false, false) {}
    const char *name() const override { return "always-delete"; }
    bool admitOnEviction(Fragment &, TimeUs) override { return false; }
};

/**
 * The paper's probation counter (§5.2/§5.3): count hits in the source
 * tier; a victim advances iff its count reached the threshold. With
 * eager set, *reaching* the threshold on a hit upgrades immediately.
 */
class ThresholdPolicy : public PromotionPolicy
{
  public:
    explicit ThresholdPolicy(std::uint32_t threshold,
                             bool eager = false)
        : PromotionPolicy(true, true), threshold_(threshold),
          eager_(eager)
    {
    }

    const char *name() const override { return "threshold"; }

    void onEnter(Fragment &frag, TimeUs) override
    {
        frag.accessCount = 0;
    }

    bool onHit(Fragment &frag, TimeUs) override
    {
        ++frag.accessCount;
        return eager_ && frag.accessCount >= threshold_;
    }

    bool admitOnEviction(Fragment &frag, TimeUs) override
    {
        return frag.accessCount >= threshold_;
    }

    std::uint32_t threshold() const { return threshold_; }
    bool eager() const { return eager_; }

  private:
    std::uint32_t threshold_;
    bool eager_;
};

/**
 * TRRIP-style temperature policy: the access counter is a temperature
 * that cools with virtual time. Every halfLife microseconds without
 * an access halves the counter, so a burst of hits long ago no longer
 * earns promotion — re-reference *recency* matters, not lifetime hit
 * count. Decay happens lazily on the hit and eviction paths using the
 * fragment's lastAccess clock.
 */
class TemperaturePolicy : public PromotionPolicy
{
  public:
    TemperaturePolicy(std::uint32_t threshold, TimeUs half_life,
                      bool eager = false);

    const char *name() const override { return "temperature"; }
    void onEnter(Fragment &frag, TimeUs now) override;
    bool onHit(Fragment &frag, TimeUs now) override;
    bool admitOnEviction(Fragment &frag, TimeUs now) override;

    std::uint32_t threshold() const { return threshold_; }
    TimeUs halfLife() const { return halfLife_; }

  private:
    void decay(Fragment &frag, TimeUs now) const;

    std::uint32_t threshold_;
    TimeUs halfLife_;
    bool eager_;
};

/** Constructor bundle: built in one place so adapters can validate
 *  their legacy configs (with the legacy fatal messages) before any
 *  pipeline part is constructed. */
struct TierPipelineInit
{
    std::string name;
    std::vector<TierSpec> tiers;
    std::vector<std::unique_ptr<PromotionPolicy>> edges;
};

/**
 * A CacheManager over an ordered pipeline of local caches.
 *
 * Fresh inserts land in tier 0; capacity victims of tier i are either
 * advanced into tier i+1 or deleted per the edge's PromotionPolicy;
 * victims of the last tier are deleted. Inserting into a tier may
 * evict victims there, which cascade further (Figure 8).
 */
class TierPipeline : public CacheManager
{
  public:
    explicit TierPipeline(TierPipelineInit init);

    // The hot entry points are final: the adapters below never
    // override them, and sealing lets the batched-replay fast path
    // devirtualize once it knows it holds a TierPipeline.
    std::string name() const override { return name_; }
    bool lookup(TraceId id, TimeUs now) final;
    bool insert(TraceId id, std::uint32_t size_bytes, ModuleId module,
                TimeUs now) final;
    void invalidateModule(ModuleId module, TimeUs now) final;
    bool setPinned(TraceId id, bool pinned) final;
    bool contains(TraceId id) const final;
    std::uint64_t totalCapacity() const final;
    std::uint64_t usedBytes() const final;
    void prepareDenseIds(std::uint64_t id_bound) final;

    // --- introspection (analysis passes, tests, tools) ---

    std::size_t tierCount() const { return tiers_.size(); }
    const TierSpec &tierSpec(std::size_t tier) const
    {
        return specs_[tier];
    }
    const LocalCache &tierCache(std::size_t tier) const
    {
        return *tiers_[tier];
    }
    const GenerationStats &tierStats(std::size_t tier) const
    {
        return tierStats_[tier];
    }
    /** Generation label of @p tier (see tierLabelFor). */
    Generation tierLabel(std::size_t tier) const
    {
        return labels_[tier];
    }
    /** The edge policy out of @p tier (tier < tierCount() - 1). */
    const PromotionPolicy &edgePolicy(std::size_t tier) const
    {
        return *edges_[tier];
    }

    /** Which tier currently holds @p id; panics when absent. */
    std::size_t tierOf(TraceId id) const;

    /** Trace -> tier residency index (introspection for the static
     *  checker, src/analysis). Single-tier pipelines keep no index —
     *  the tier is always 0 — so this is empty then. */
    const TraceIndex<TierId> &residencyIndex() const { return where_; }

    /** Internal consistency check (test support): the index and the
     *  local caches must agree. Panics on violation. */
    void validate() const;

    // --- cross-process shared tier (shared_store.h) ---
    //
    // A mounted SharedCodeStore acts as one extra read-mostly tier
    // behind the private pipeline, shared with every other process
    // that mounted the same store. The pipeline probes it on a
    // private miss (a hit is reported as Generation::Shared), offers
    // its last-tier capacity victims to it (publish = the ShareJIT
    // promotion into shared memory), and forwards module
    // invalidations by uid so an unmap in this process drops the
    // module fleet-wide. Sharing off (no mount) leaves every code
    // path and event stream bit-identical to the unmounted pipeline.

    /** This process's view of its mounted shared tier. */
    struct SharedTierStats
    {
        std::uint64_t probes = 0;
        std::uint64_t hits = 0;
        std::uint64_t publishes = 0;
        std::uint64_t publishedInserts = 0;  ///< first copy fleet-wide
        std::uint64_t publishedAttaches = 0; ///< deduplicated
        std::uint64_t publishedDuplicates = 0;
        std::uint64_t publishedRejects = 0;
        std::uint64_t invalidationsForwarded = 0;
    };

    /**
     * Mount @p store as the shared tier, acting as process
     * @p process (the store's attach-mask index; unique per mounted
     * pipeline). Requires an empty pipeline; mutually exclusive with
     * enableFastReplay (the sidecar miss path would bypass the
     * probe).
     */
    void mountSharedStore(SharedCodeStore *store, unsigned process);

    bool sharedStoreMounted() const { return sharedStore_ != nullptr; }

    /** The mounted store (nullptr when sharing is off). */
    const SharedCodeStore *sharedStore() const { return sharedStore_; }

    /** This pipeline's attach-mask index in the mounted store. */
    unsigned sharedProcessIndex() const { return sharedProcess_; }

    /**
     * Register the process-independent uid behind local module id
     * @p module, so invalidateModule(@p module) can forward the unmap
     * to the mounted store. Unregistered modules invalidate only the
     * private tiers (anonymous/private code never reaches the store
     * anyway — publish drops fragments whose id carries no uid).
     */
    void setSharedModuleUid(ModuleId module, ModuleUid uid);

    /**
     * Install a dense-id -> canonical-key translation for the shared
     * tier. Replay feeds the pipeline dense per-log ids, which are
     * meaningless to other processes; the table (one CompiledLog's
     * originalIds(), which must outlive the pipeline) maps them back
     * to canonical (module uid, offset) keys before any probe or
     * publish. Without a table, ids are taken as already canonical
     * (the live-runtime case). nullptr clears.
     */
    void setSharedKeyTable(const TraceId *keys, std::uint64_t count)
    {
        sharedKeys_ = keys;
        sharedKeyCount_ = keys == nullptr ? 0 : count;
    }

    /** The shared-store key this pipeline uses for trace @p id. */
    TraceId sharedKeyOf(TraceId id) const
    {
        return sharedKeys_ != nullptr && id < sharedKeyCount_
                   ? sharedKeys_[id]
                   : id;
    }

    const SharedTierStats &sharedTierStats() const
    {
        return sharedStats_;
    }

    // --- dense fast-replay hit path (sim::BatchedReplay) ---
    //
    // A replay hit normally costs two index probes (residency map +
    // local-cache find), a fragment-line read-modify-write, and up to
    // three virtual calls. When every tier's local policy ignores
    // touches, every hit-observing edge is a plain non-eager
    // ThresholdPolicy (a bare counter bump), and the listener declines
    // hit/miss events, all a hit *observably* does is increment one
    // counter — so the pipeline can keep a dense per-trace sidecar of
    // {pending counter delta, tier + 1} slots and serve the hit from a
    // single cache line with no virtual dispatch. Deltas are folded
    // back into the authoritative Fragment::accessCount at every
    // residency transition (eviction, promotion, unmap) — i.e. before
    // any policy or listener can read the count — and in bulk by
    // flushFastCounts() before external inspection, so every decision
    // and every end state is bit-identical to the slow path.

    /** One sidecar slot: pending accessCount delta plus residency
     *  (0 = absent, else tier + 1). Sized to one aligned 8-byte load
     *  so a fast hit touches a single cache line. */
    struct HotSlot
    {
        std::uint32_t delta = 0;
        std::uint8_t tierPlusOne = 0;
    };

    /**
     * Enable the fast path for dense ids in [0, @p id_bound).
     * Requires an empty pipeline. @return false (leaving the pipeline
     * untouched) when the configuration is ineligible: a
     * touch-observing local policy (LRU/RRIP), an eager or
     * temperature edge, a listener that wants hit/miss events, or a
     * mounted shared store (whose probe lives on the miss path the
     * sidecar skips).
     */
    bool enableFastReplay(std::uint64_t id_bound);

    bool fastReplayEnabled() const { return !hot_.empty(); }

    /** Sidecar slot of dense id @p id (introspection for the temporal
     *  checker's reconciliation pass): tierPlusOne is 0 when the
     *  sidecar believes @p id absent. Only legal after
     *  enableFastReplay() accepted and for @p id inside its bound. */
    HotSlot fastSlotOf(TraceId id) const { return hot_[id]; }

    /** Fast hit probe: @return 0 when @p id is absent (caller runs
     *  the regular miss path), else the residency tier + 1. Counts
     *  the hit for the tier's out-edge threshold when it observes
     *  hits. Only legal after enableFastReplay() returned true. */
    std::uint8_t fastProbe(TraceId id)
    {
        HotSlot &slot = hot_[id];
        const std::uint8_t t1 = slot.tierPlusOne;
        if ((countMask_ >> t1 & 1u) != 0) {
            ++slot.delta;
        }
        return t1;
    }

    /** Prefetch the sidecar slot of @p id. The sidecar of a large
     *  log outgrows L1/L2, so a replay kernel that knows upcoming
     *  dense ids can hide the probe's cache miss by prefetching a
     *  few events ahead. Only legal after enableFastReplay(). */
    void fastPrefetch(TraceId id) const
    {
        __builtin_prefetch(hot_.data() + id);
    }

    /** Fold a chunk's worth of fast-path lookups into the manager
     *  stats (@p tier_hits holds per-tier hit tallies). */
    void noteFastLookups(std::uint64_t lookups, std::uint64_t misses,
                         const std::uint64_t *tier_hits)
    {
        stats_.lookups += lookups;
        stats_.hits += lookups - misses;
        stats_.misses += misses;
        for (std::size_t i = 0; i < tiers_.size(); ++i) {
            tierStats_[i].hits += tier_hits[i];
        }
    }

    /** Fold every pending fast-path counter delta into its resident
     *  Fragment. Call before any external fragment inspection (end of
     *  replay, checkpoint hooks). */
    void flushFastCounts();

  private:
    bool hasEdgeOut(TierId tier) const
    {
        return tier + 1u < tiers_.size();
    }

    /** Move @p frag from @p from into the next tier (promotion or
     *  eager upgrade); the fragment is already removed from its old
     *  tier. Cascades the destination tier's victims. */
    void advance(TierId from, Fragment frag, TimeUs now);

    /** Handle a fragment evicted from @p tier for capacity. */
    void cascadeVictim(TierId tier, Fragment victim, TimeUs now);

    /** Probe the mounted shared store on a private miss. @return true
     *  on a shared hit (already counted and reported). Only called
     *  with sharedStore_ mounted. */
    bool sharedProbe(TraceId id, TimeUs now);

    /** Destroy @p frag (it left the pipeline). */
    void destroy(const Fragment &frag, TierId tier, EvictReason reason,
                 TimeUs now);

    // Sidecar maintenance (no-ops while the fast path is disabled).
    // Every copy that leaves a local cache must pull its pending
    // delta before any policy or listener reads its access count.

    void syncFastSlot(Fragment &frag)
    {
        if (hot_.empty()) {
            return;
        }
        HotSlot &slot = hot_[frag.id];
        frag.accessCount += slot.delta;
        slot = HotSlot{};
    }

    void setFastSlot(TraceId id, TierId tier)
    {
        if (!hot_.empty()) {
            hot_[id] =
                HotSlot{0, static_cast<std::uint8_t>(tier + 1)};
        }
    }

    void clearFastSlot(TraceId id)
    {
        if (!hot_.empty()) {
            hot_[id] = HotSlot{};
        }
    }

    std::string name_;
    std::vector<TierSpec> specs_;
    std::vector<std::unique_ptr<LocalCache>> tiers_;
    std::vector<std::unique_ptr<PromotionPolicy>> edges_;
    std::vector<GenerationStats> tierStats_;
    std::vector<Generation> labels_;
    TraceIndex<TierId> where_;

    // Hot-path flattening: raw tier/edge pointers in fixed arrays
    // (one load instead of a vector-of-unique_ptr double hop) and the
    // edge policy flags folded into per-pipeline bitmasks, so lookup
    // and insert test one bit instead of chasing a policy object.
    // Single-tier pipelines additionally skip the residency index
    // entirely — the tier is always 0 — matching what the standalone
    // unified manager used to cost.
    std::array<LocalCache *, kMaxTiers> tierPtrs_{};
    std::array<PromotionPolicy *, kMaxTiers> edgePtrs_{};
    std::uint8_t hitObserverMask_ = 0;
    std::uint8_t entryTrackerMask_ = 0;
    bool multiTier_ = false;
    std::uint64_t usedBytes_ = 0; ///< incremental sum of tier usage

    // Fast-replay sidecar (empty unless enableFastReplay() accepted).
    // countMask_ is indexed by tierPlusOne (bit 0 never set) so the
    // probe shifts by the slot byte directly.
    std::vector<HotSlot> hot_;
    std::uint16_t countMask_ = 0;

    // Shared tier (nullptr unless mountSharedStore() was called).
    SharedCodeStore *sharedStore_ = nullptr;
    unsigned sharedProcess_ = 0;
    SharedTierStats sharedStats_;
    std::unordered_map<ModuleId, ModuleUid> sharedModuleUids_;
    const TraceId *sharedKeys_ = nullptr;
    std::uint64_t sharedKeyCount_ = 0;

    // Per-depth eviction scratch, reused across inserts so the hot
    // insert/cascade path allocates nothing after warm-up. insert()
    // owns slot 0 and advance(from, ...) owns slot from + 1, so the
    // cascade recursion (strictly increasing tier) never aliases a
    // vector that an outer frame is still iterating.
    std::array<std::vector<Fragment>, kMaxTiers> evictScratch_;
};

/** Label of tier @p tier in a pipeline of @p tier_count tiers:
 *  Unified for a single tier; otherwise Nursery first, Persistent
 *  last, Probation in the middle of a 3-tier pipeline, and
 *  Tier1..Tier6 for the middles of deeper ones. */
Generation tierLabelFor(std::size_t tier, std::size_t tier_count);

/** Value-type description of one edge policy (buildable config). */
struct EdgeSpec
{
    enum class Rule : std::uint8_t {
        AlwaysPromote,
        AlwaysDelete,
        Threshold,
        Temperature,
    };

    Rule rule = Rule::AlwaysPromote;
    std::uint32_t threshold = 1;  ///< Threshold / Temperature
    bool eager = false;           ///< Threshold / Temperature
    TimeUs halfLifeUs = 0;        ///< Temperature only

    std::unique_ptr<PromotionPolicy> make() const;
};

/**
 * Value-type description of a whole pipeline: per-tier budget
 * fractions plus the edge policies between them. The canonical way
 * sweeps, gencheck, and tests spell non-legacy topologies.
 */
struct TierTopology
{
    std::string name;               ///< report label ("4tier", ...)
    std::vector<double> fractions;  ///< per-tier share of the budget
    std::vector<EdgeSpec> edges;    ///< fractions.size() - 1 entries
    LocalPolicy policy = LocalPolicy::PseudoCircular;
    PinHandling pins = PinHandling::Sticky;

    /** Split @p total_bytes per the fractions; every tier gets at
     *  least one byte and the last tier absorbs the rounding
     *  remainder so the specs sum exactly to @p total_bytes. */
    std::vector<TierSpec> tierSpecs(std::uint64_t total_bytes) const;

    /** Build the pipeline over a @p total_bytes budget. */
    std::unique_ptr<TierPipeline> build(std::uint64_t total_bytes) const;
};

/** The built-in catalog of non-legacy topologies (2-tier, 4-tier,
 *  temperature 3-tier) used by sweeps, gencheck, and the bench. */
const std::vector<TierTopology> &namedTierTopologies();

/** @return the catalog entry named @p name, or nullptr. */
const TierTopology *findTierTopology(std::string_view name);

} // namespace gencache::cache

#endif // GENCACHE_CODECACHE_TIER_PIPELINE_H
