/**
 * @file
 * The paper's instruction-overhead model (§6.2, Table 2).
 *
 * The authors measured DynamoRIO events with Pentium-4 performance
 * counters via PAPI and reduced them to best-fit formulas:
 *
 *   trace generation   865 * bytes^0.8
 *   DR context switch  25
 *   eviction           2.75 * bytes + 2650
 *   promotion          22 * bytes + 8030
 *
 * A conflict miss in the trace cache costs two context switches, one
 * trace regeneration, and one basic-block-to-trace copy (priced as a
 * promotion). For the 242-byte median trace this gives 69,834 / 3,316
 * / 13,354 instructions for generation / eviction / promotion and
 * roughly 85,000 instructions per miss — all reproduced by this
 * module and checked in the unit tests.
 */

#ifndef GENCACHE_COSTMODEL_COST_MODEL_H
#define GENCACHE_COSTMODEL_COST_MODEL_H

#include <cstdint>

#include "codecache/cache_manager.h"
#include "support/units.h"

namespace gencache::cost {

/** Table 2's best-fit overhead formulas. */
class CostModel
{
  public:
    CostModel() = default;

    /** 865 * bytes^0.8 */
    InstrCount traceGeneration(std::uint32_t bytes) const;

    /** 25 instructions per DynamoRIO context switch. */
    InstrCount contextSwitch() const { return kContextSwitch; }

    /** 2.75 * bytes + 2650 */
    InstrCount eviction(std::uint32_t bytes) const;

    /** 22 * bytes + 8030 */
    InstrCount promotion(std::uint32_t bytes) const;

    /** Basic-block-to-trace copy: "the same cost as a promotion". */
    InstrCount copy(std::uint32_t bytes) const
    {
        return promotion(bytes);
    }

    /** Full §6.2 conflict-miss cost: 2 switches + regeneration +
     *  copy. ~85k instructions for the 242-byte median trace. */
    InstrCount missCost(std::uint32_t bytes) const;

    /** The paper's median trace size across all benchmarks. */
    static constexpr std::uint32_t kMedianTraceBytes = 242;

  private:
    static constexpr InstrCount kContextSwitch = 25;
    static constexpr double kGenCoeff = 865.0;
    static constexpr double kGenExponent = 0.8;
    static constexpr double kEvictCoeff = 2.75;
    static constexpr InstrCount kEvictBase = 2650;
    static constexpr double kPromoteCoeff = 22.0;
    static constexpr InstrCount kPromoteBase = 8030;
};

/** Per-category instruction overhead totals. */
struct OverheadBreakdown
{
    InstrCount traceGeneration = 0;
    InstrCount contextSwitches = 0;
    InstrCount evictions = 0;
    InstrCount promotions = 0;
    InstrCount copies = 0;

    InstrCount total() const
    {
        return traceGeneration + contextSwitches + evictions +
               promotions + copies;
    }
};

/**
 * Cache-event listener that prices every transition with the
 * CostModel, mirroring §6.2's accounting:
 *
 *  - each insert into the nursery/unified cache is a trace generation
 *    plus two context switches plus one bb-to-trace copy (compulsory
 *    first generation and conflict-miss regeneration cost the same);
 *  - each deletion-eviction costs eviction(bytes);
 *  - each inter-cache promotion costs promotion(bytes).
 */
class OverheadAccount : public cache::CacheEventListener
{
  public:
    explicit OverheadAccount(CostModel model = CostModel{})
        : cache::CacheEventListener(/*wants_hits=*/false,
                                    /*wants_misses=*/false),
          model_(model)
    {
    }

    void onInsert(const cache::Fragment &frag, cache::Generation gen,
                  TimeUs now) override;
    void onEvict(const cache::Fragment &frag, cache::Generation gen,
                 cache::EvictReason reason, TimeUs now) override;
    void onPromote(const cache::Fragment &frag, cache::Generation from,
                   cache::Generation to, TimeUs now) override;

    const OverheadBreakdown &breakdown() const { return breakdown_; }
    const CostModel &model() const { return model_; }

    /** Reset all accumulated overhead. */
    void reset() { breakdown_ = OverheadBreakdown{}; }

  private:
    CostModel model_;
    OverheadBreakdown breakdown_;
};

} // namespace gencache::cost

#endif // GENCACHE_COSTMODEL_COST_MODEL_H
