#include "costmodel/cost_model.h"

#include <cmath>

namespace gencache::cost {

InstrCount
CostModel::traceGeneration(std::uint32_t bytes) const
{
    return static_cast<InstrCount>(std::llround(
        kGenCoeff * std::pow(static_cast<double>(bytes),
                             kGenExponent)));
}

InstrCount
CostModel::eviction(std::uint32_t bytes) const
{
    return static_cast<InstrCount>(std::llround(
               kEvictCoeff * static_cast<double>(bytes))) +
           kEvictBase;
}

InstrCount
CostModel::promotion(std::uint32_t bytes) const
{
    return static_cast<InstrCount>(std::llround(
               kPromoteCoeff * static_cast<double>(bytes))) +
           kPromoteBase;
}

InstrCount
CostModel::missCost(std::uint32_t bytes) const
{
    return 2 * contextSwitch() + traceGeneration(bytes) + copy(bytes);
}

void
OverheadAccount::onInsert(const cache::Fragment &frag,
                          cache::Generation gen, TimeUs now)
{
    (void)now;
    // Only fresh generations reach onInsert (promotion moves arrive
    // via onPromote), so every call prices a full miss service.
    (void)gen;
    breakdown_.traceGeneration += model_.traceGeneration(frag.sizeBytes);
    breakdown_.contextSwitches += 2 * model_.contextSwitch();
    breakdown_.copies += model_.copy(frag.sizeBytes);
}

void
OverheadAccount::onEvict(const cache::Fragment &frag,
                         cache::Generation gen,
                         cache::EvictReason reason, TimeUs now)
{
    (void)gen;
    (void)now;
    if (cache::isDeletion(reason)) {
        breakdown_.evictions += model_.eviction(frag.sizeBytes);
    }
}

void
OverheadAccount::onPromote(const cache::Fragment &frag,
                           cache::Generation from, cache::Generation to,
                           TimeUs now)
{
    (void)from;
    (void)now;
    if (to == cache::Generation::Persistent) {
        // A persistent upgrade relocates the code and re-patches its
        // links (§5.4): the full Table 2 promotion cost.
        breakdown_.promotions += model_.promotion(frag.sizeBytes);
    } else {
        // Nursery victims transfer to the probation cache without
        // recompilation — the §5.3 design removes counters precisely
        // so this transfer stays cheap. We price it as link-update
        // bookkeeping using the eviction formula, the same work a
        // unified cache performs when it evicts the fragment.
        breakdown_.promotions += model_.eviction(frag.sizeBytes);
    }
}

} // namespace gencache::cost
