#include "runtime/trace.h"

#include "support/logging.h"

namespace gencache::runtime {

void
TraceBuilder::begin(cache::TraceId id, isa::GuestAddr entry,
                    guest::ModuleId module)
{
    if (active_) {
        GENCACHE_PANIC("TraceBuilder::begin while already recording");
    }
    trace_ = Trace{};
    trace_.id = id;
    trace_.entry = entry;
    trace_.module = module;
    active_ = true;
}

void
TraceBuilder::append(const isa::BasicBlock &block, isa::GuestAddr next)
{
    if (!active_) {
        GENCACHE_PANIC("TraceBuilder::append while not recording");
    }
    trace_.blockAddrs.push_back(block.startAddr());
    trace_.sizeBytes += block.sizeBytes();

    // Record side exits: for a conditional branch, whichever successor
    // the recorded path does NOT take becomes an exit stub target.
    const isa::Instruction &term = block.terminator();
    if (isa::isConditionalBranch(term.opcode)) {
        isa::GuestAddr fall_through = block.fallThroughAddr();
        isa::GuestAddr other =
            (next == term.target) ? fall_through : term.target;
        trace_.exitTargets.push_back(other);
        trace_.sizeBytes += kExitStubBytes;
    }
    lastNext_ = next;
    lastIndirect_ = isa::isIndirect(term.opcode);
}

Trace
TraceBuilder::finish()
{
    if (!active_) {
        GENCACHE_PANIC("TraceBuilder::finish while not recording");
    }
    active_ = false;
    if (trace_.blockAddrs.empty()) {
        GENCACHE_PANIC("finishing empty trace {}", trace_.id);
    }
    // The fall-off-the-end exit routes back through the dispatcher;
    // its target is statically known (and thus linkable) unless the
    // final terminator was indirect.
    trace_.sizeBytes += kExitStubBytes;
    if (!lastIndirect_) {
        trace_.exitTargets.push_back(lastNext_);
    }
    return trace_;
}

void
TraceBuilder::abort()
{
    active_ = false;
    trace_ = Trace{};
}

} // namespace gencache::runtime
