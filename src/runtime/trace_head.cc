#include "runtime/trace_head.h"

namespace gencache::runtime {

TraceHeadTable::TraceHeadTable(std::uint32_t threshold)
    : threshold_(threshold)
{
}

void
TraceHeadTable::markHead(isa::GuestAddr addr, TraceHeadKind kind)
{
    auto [it, inserted] = counters_.emplace(addr, HeadInfo{});
    if (inserted) {
        it->second.kind = kind;
    }
}

bool
TraceHeadTable::isHead(isa::GuestAddr addr) const
{
    return counters_.count(addr) != 0;
}

bool
TraceHeadTable::recordExecution(isa::GuestAddr addr)
{
    auto it = counters_.find(addr);
    if (it == counters_.end()) {
        return false;
    }
    ++it->second.count;
    return it->second.count == threshold_;
}

void
TraceHeadTable::remove(isa::GuestAddr addr)
{
    counters_.erase(addr);
}

void
TraceHeadTable::removeRange(isa::GuestAddr base, isa::GuestAddr end)
{
    for (auto it = counters_.begin(); it != counters_.end();) {
        if (it->first >= base && it->first < end) {
            it = counters_.erase(it);
        } else {
            ++it;
        }
    }
}

std::uint32_t
TraceHeadTable::count(isa::GuestAddr addr) const
{
    auto it = counters_.find(addr);
    return it == counters_.end() ? 0 : it->second.count;
}

} // namespace gencache::runtime
