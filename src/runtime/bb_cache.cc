#include "runtime/bb_cache.h"

namespace gencache::runtime {

const isa::BasicBlock *
BasicBlockCache::fetch(isa::GuestAddr addr,
                       const isa::BasicBlock &source,
                       guest::ModuleId module)
{
    auto it = blocks_.find(addr);
    if (it != blocks_.end()) {
        ++stats_.hits;
        return &it->second.block;
    }
    Entry entry;
    entry.block = source; // the copy into the software code cache
    entry.module = module;
    ++stats_.copies;
    stats_.copiedBytes += source.sizeBytes();
    usedBytes_ += source.sizeBytes();
    auto [pos, inserted] = blocks_.emplace(addr, std::move(entry));
    return &pos->second.block;
}

const isa::BasicBlock *
BasicBlockCache::lookup(isa::GuestAddr addr) const
{
    auto it = blocks_.find(addr);
    return it == blocks_.end() ? nullptr : &it->second.block;
}

void
BasicBlockCache::invalidateModule(guest::ModuleId module)
{
    for (auto it = blocks_.begin(); it != blocks_.end();) {
        if (it->second.module == module) {
            usedBytes_ -= it->second.block.sizeBytes();
            ++stats_.invalidations;
            it = blocks_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace gencache::runtime
