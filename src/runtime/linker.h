/**
 * @file
 * Trace linking (paper §5.4's code relocation support).
 *
 * When a trace's exit target is the entry of another resident trace,
 * the dynamic optimizer patches the exit stub to jump there directly,
 * avoiding a context switch. Evicting or moving a trace requires
 * unlinking every incoming patched exit. This module tracks the link
 * graph and counts the patch/unpatch operations so promotion costs
 * (Table 2) rest on real mechanics.
 */

#ifndef GENCACHE_RUNTIME_LINKER_H
#define GENCACHE_RUNTIME_LINKER_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/trace.h"

namespace gencache::runtime {

/** Link graph statistics. */
struct LinkerStats
{
    std::uint64_t linksPatched = 0;
    std::uint64_t linksUnpatched = 0;
    std::uint64_t relocations = 0; ///< traces moved between caches
};

/** Tracks direct links between resident traces. */
class TraceLinker
{
  public:
    /** Per-trace link-graph record. Public so the static checker
     *  (src/analysis) can verify the graph against real state. */
    struct Node
    {
        isa::GuestAddr entry = 0;
        TraceSlot slot = kInvalidSlot; ///< dense process-local handle
        std::vector<isa::GuestAddr> exitTargets;
        std::unordered_set<cache::TraceId> outgoing;
        std::unordered_set<cache::TraceId> incoming;
    };

    /** Per-trace direct-chaining cache, indexed by the owning trace's
     *  dense TraceSlot (slots are sequential and never reused —
     *  canonical trace *ids* are sparse 64-bit keys and cannot index
     *  a flat array): for each exit target of the resident trace, the
     *  slot of the currently linked successor trace (the "patched
     *  jump destination"), or kInvalidSlot when the exit returns to
     *  the dispatcher. Cleared on eviction. */
    struct ExitCache
    {
        std::vector<isa::GuestAddr> targets; ///< == node exitTargets
        std::vector<TraceSlot> slots;        ///< linked successor slots
    };

    TraceLinker() = default;

    /**
     * Register @p trace as resident and patch links in both
     * directions: its exits to resident entries, and resident exits
     * targeting its entry.
     */
    void onTraceInserted(const Trace &trace);

    /** Unpatch every link touching @p id and forget it. */
    void onTraceEvicted(cache::TraceId id);

    /** A promotion moved the trace: all links into and out of it must
     *  be re-patched at the new location (counted as a relocation plus
     *  re-patches). The link graph itself is unchanged. */
    void onTraceMoved(cache::TraceId id);

    /** @return true when @p from has a patched link to @p to. */
    bool linked(cache::TraceId from, cache::TraceId to) const;

    /** Number of patched link edges. */
    std::size_t linkCount() const;

    /** @return resident trace id whose entry is @p addr, or
     *  cache::kInvalidTrace. */
    cache::TraceId traceAt(isa::GuestAddr addr) const;

    /**
     * Direct chaining (fast path): the cached successor slot for the
     * trace in slot @p from exiting to guest address @p target —
     * equivalently the slot of `linked(from, traceAt(target)) ?
     * traceAt(target) : none` — resolved from a dense per-slot exit
     * cache (a linear scan of the trace's few exit targets) instead
     * of two hash probes. @p from must be the slot of a resident
     * trace (a linker node).
     */
    TraceSlot cachedSuccessor(TraceSlot from,
                              isa::GuestAddr target) const
    {
        const ExitCache &cache = exitCache_[from];
        for (std::size_t i = 0; i < cache.targets.size(); ++i) {
            if (cache.targets[i] == target) {
                return cache.slots[i];
            }
        }
        return kInvalidSlot;
    }

    const LinkerStats &stats() const { return stats_; }

    /// @name Introspection for the static checker (src/analysis).
    /// @{
    /** The live link graph, keyed by resident trace id. */
    const std::unordered_map<cache::TraceId, Node> &nodes() const
    {
        return nodes_;
    }
    /** Entry address -> trace id lookup index. */
    const std::unordered_map<isa::GuestAddr, cache::TraceId> &
    entryIndex() const
    {
        return byEntry_;
    }
    /** The dense direct-chaining cache, indexed by TraceSlot (checked
     *  against nodes() by the fe-exit-* analysis passes). Entries of
     *  non-resident slots are empty. */
    const std::vector<ExitCache> &exitCaches() const
    {
        return exitCache_;
    }
    /// @}

  protected:
    // Protected rather than private so the static-checker negative
    // tests can corrupt the state through a test-only subclass.
    std::unordered_map<cache::TraceId, Node> nodes_;
    std::unordered_map<isa::GuestAddr, cache::TraceId> byEntry_;
    std::vector<ExitCache> exitCache_;
    LinkerStats stats_;

  private:
    /** Point every cached slot aimed at @p entry to @p slot. */
    void retargetSlots(isa::GuestAddr entry, TraceSlot slot);
};

} // namespace gencache::runtime

#endif // GENCACHE_RUNTIME_LINKER_H
