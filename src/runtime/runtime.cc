#include "runtime/runtime.h"

#include "support/logging.h"

namespace gencache::runtime {

Runtime::Runtime(guest::AddressSpace &space,
                 cache::CacheManager &manager,
                 std::uint32_t trace_threshold, FrontEnd frontend)
    : space_(space), manager_(manager), interp_(space),
      frontend_(frontend), heads_(trace_threshold),
      denseHeads_(trace_threshold)
{
    manager_.setListener(this);
    std::uint64_t footprint = 0;
    for (const guest::GuestModule *module : space_.mappedModules()) {
        log_.append(tracelog::Event::moduleLoad(0, module->id()));
        log_.setModuleUid(module->id(), module->uid());
        footprint += module->sizeBytes();
    }
    log_.setFootprintBytes(footprint);
    syncBlockCapacity();
}

void
Runtime::syncBlockCapacity()
{
    guest::BlockId limit = space_.blockIndex().blockLimit();
    denseHeads_.ensureCapacity(limit);
    denseBbCache_.ensureCapacity(limit);
    if (traceIdOfBlock_.size() < limit) {
        traceIdOfBlock_.resize(limit, cache::kInvalidTrace);
        slotOfBlock_.resize(limit, kInvalidSlot);
    }
}

void
Runtime::loadModule(const guest::GuestModule &module)
{
    space_.map(module);
    syncBlockCapacity();
    log_.append(tracelog::Event::moduleLoad(now(), module.id()));
    log_.setModuleUid(module.id(), module.uid());
    log_.setFootprintBytes(log_.footprintBytes() + module.sizeBytes());
    if (checkpointHook_) {
        checkpointHook_(*this);
    }
}

void
Runtime::unloadModule(guest::ModuleId module)
{
    // Capture the module's dense id range and address bounds before
    // the unmap retires them.
    guest::BlockId first = 0;
    guest::BlockId last = 0;
    bool ranged = space_.moduleBlockRange(module, first, last);
    isa::GuestAddr base = 0;
    isa::GuestAddr end = 0;
    for (const guest::GuestModule *mapped : space_.mappedModules()) {
        if (mapped->id() == module) {
            base = mapped->baseAddr();
            end = mapped->endAddr();
        }
    }

    // Order matters: the manager's invalidation fires onEvict events
    // that unlink evicted traces, so the linker must still know them.
    manager_.invalidateModule(module, now());

    for (auto it = traces_.begin(); it != traces_.end();) {
        if (it->second.module == module) {
            traceIdOfEntry_.erase(it->second.entry);
            guest::BlockId bid = space_.blockIdAt(it->second.entry);
            if (bid != guest::kInvalidBlockId) {
                traceIdOfBlock_[bid] = cache::kInvalidTrace;
                slotOfBlock_[bid] = kInvalidSlot;
            }
            traceBySlot_[it->second.slot] = nullptr;
            it = traces_.erase(it);
        } else {
            ++it;
        }
    }
    // Per-mode block state: each call no-ops for the inactive mode's
    // structures (they are empty). Head counters in the unloaded
    // range are dropped too — they must not survive into a remap.
    bbCache_.invalidateModule(module);
    heads_.removeRange(base, end);
    if (ranged) {
        denseBbCache_.invalidateRange(first, last);
        denseHeads_.removeRange(first, last);
    }
    space_.unmap(module);
    log_.append(tracelog::Event::moduleUnload(now(), module));
    if (checkpointHook_) {
        checkpointHook_(*this);
    }
}

void
Runtime::start(isa::GuestAddr entry)
{
    state_.reset(entry);
    started_ = true;
}

std::uint64_t
Runtime::run(std::uint64_t max_instructions)
{
    if (!started_) {
        GENCACHE_PANIC("Runtime::run before start()");
    }
    std::uint64_t begin = interp_.instructionsRetired();
    while (!state_.halted &&
           interp_.instructionsRetired() - begin < max_instructions) {
        dispatch();
    }
    log_.setDuration(now());
    if (checkpointHook_) {
        checkpointHook_(*this);
    }
    return interp_.instructionsRetired() - begin;
}

void
Runtime::dispatch()
{
    if (frontend_ == FrontEnd::Predecoded) {
        dispatchFast();
        return;
    }
    isa::GuestAddr pc = state_.pc;
    auto it = traceIdOfEntry_.find(pc);
    if (it != traceIdOfEntry_.end()) {
        cache::TraceId tid = it->second;
        if (!manager_.lookup(tid, now())) {
            // Code cache miss: regenerate the trace (§6.2's miss cost:
            // two context switches, a regeneration, and a copy).
            if (regenerate(tid)) {
                ++stats_.traceRegenerations;
            } else {
                // Cannot be cached right now: fall back to the
                // interpreter for this block.
                interpretBlock();
                return;
            }
        }
        ++stats_.contextSwitches; // dispatcher -> code cache
        cache::TraceId current = tid;
        while (current != cache::kInvalidTrace && !state_.halted) {
            current = executeTrace(current);
        }
        ++stats_.contextSwitches; // code cache -> dispatcher
        return;
    }
    interpretBlock();
}

void
Runtime::dispatchFast()
{
    guest::BlockId bid = space_.blockIdAt(state_.pc);
    cache::TraceId tid = bid != guest::kInvalidBlockId
                             ? traceIdOfBlock_[bid]
                             : cache::kInvalidTrace;
    if (tid != cache::kInvalidTrace) {
        if (!manager_.lookup(tid, now())) {
            if (regenerate(tid)) {
                ++stats_.traceRegenerations;
            } else {
                interpretBlockFast(bid);
                return;
            }
        }
        ++stats_.contextSwitches; // dispatcher -> code cache
        TraceSlot current = slotOfBlock_[bid];
        while (current != kInvalidSlot && !state_.halted) {
            current = executeTraceFast(current);
        }
        ++stats_.contextSwitches; // code cache -> dispatcher
        return;
    }
    interpretBlockFast(bid);
}

cache::TraceId
Runtime::executeTrace(cache::TraceId id)
{
    auto it = traces_.find(id);
    if (it == traces_.end()) {
        GENCACHE_PANIC("executing unknown trace {}", id);
    }
    const Trace &trace = it->second;
    if (state_.pc != trace.entry) {
        GENCACHE_PANIC("trace {} entered at {} (entry {})", id,
                       state_.pc, trace.entry);
    }
    ++stats_.traceExecutions;
    log_.append(tracelog::Event::traceExec(now(), id));

    std::size_t index = 0;
    while (index < trace.blockAddrs.size()) {
        interp::BlockResult result = interp_.executeBlock(state_);
        stats_.instructionsInTraces += result.instructions;
        if (result.halted) {
            return cache::kInvalidTrace;
        }
        if (index + 1 < trace.blockAddrs.size() &&
            result.next == trace.blockAddrs[index + 1]) {
            ++index;
            continue;
        }
        break;
    }

    // Trace exit. Tail-chain into a linked resident trace, otherwise
    // return to the dispatcher and mark the exit as a trace head.
    isa::GuestAddr target = state_.pc;
    cache::TraceId next = linker_.traceAt(target);
    if (next != cache::kInvalidTrace && linker_.linked(id, next)) {
        if (manager_.lookup(next, now())) {
            return next;
        }
    }
    if (space_.blockAt(target) != nullptr &&
        traceIdOfEntry_.count(target) == 0) {
        heads_.markHead(target, TraceHeadKind::TraceExit);
    }
    return cache::kInvalidTrace;
}

TraceSlot
Runtime::executeTraceFast(TraceSlot slot)
{
    const Trace *trace = traceBySlot_[slot];
    if (trace == nullptr) {
        GENCACHE_PANIC("executing dropped trace slot {}", slot);
    }
    if (state_.pc != trace->entry) {
        GENCACHE_PANIC("trace {} entered at {} (entry {})", trace->id,
                       state_.pc, trace->entry);
    }
    ++stats_.traceExecutions;
    log_.append(tracelog::Event::traceExec(now(), trace->id));

    // The whole path runs out of the trace's flattened predecoded
    // stream — no per-block lookups, no per-block call overhead.
    interp::TraceResult result = interp_.executeTrace(
        state_, trace->stream.data(), trace->streamEnd.data(),
        trace->blockAddrs.data() + 1, trace->blockIds.size());
    stats_.instructionsInTraces += result.instructions;
    if (result.halted) {
        return kInvalidSlot;
    }

    // Trace exit: direct chaining. The linker's cached successor slot
    // resolves "is this exit patched to a resident trace" in one scan
    // of the trace's few exit targets — no dispatcher hash lookup.
    isa::GuestAddr target = result.next;
    TraceSlot next = linker_.cachedSuccessor(slot, target);
    if (next != kInvalidSlot &&
        manager_.lookup(traceBySlot_[next]->id, now())) {
        return next;
    }
    guest::BlockId bid = space_.blockIdAt(target);
    if (bid != guest::kInvalidBlockId &&
        traceIdOfBlock_[bid] == cache::kInvalidTrace) {
        denseHeads_.markHead(bid, TraceHeadKind::TraceExit);
    }
    return kInvalidSlot;
}

void
Runtime::interpretBlock()
{
    isa::GuestAddr pc = state_.pc;
    const guest::GuestModule *module = space_.moduleAt(pc);
    if (module == nullptr) {
        GENCACHE_PANIC("guest pc {} is not in any mapped module ({})",
                       pc, space_.describeAddr(pc));
    }
    const isa::BasicBlock *source = space_.blockAt(pc);
    if (source == nullptr) {
        GENCACHE_PANIC("guest pc {} is not a block start ({})", pc,
                       space_.describeAddr(pc));
    }
    bbCache_.fetch(pc, *source, module->id());

    if (heads_.isHead(pc) && heads_.recordExecution(pc)) {
        buildTrace(pc);
        return;
    }

    interp::BlockResult result = interp_.executeBlock(state_);
    stats_.instructionsInterpreted += result.instructions;
    ++stats_.blocksInterpreted;
    if (!result.halted && result.backwardTransfer) {
        // Target of a backward branch: candidate loop head (§4.1).
        if (traceIdOfEntry_.count(result.next) == 0) {
            heads_.markHead(result.next,
                            TraceHeadKind::BackwardBranchTarget);
        }
    }
}

void
Runtime::interpretBlockFast(guest::BlockId block)
{
    if (block == guest::kInvalidBlockId) {
        GENCACHE_PANIC("guest pc {} is not a mapped block start ({})",
                       state_.pc, space_.describeAddr(state_.pc));
    }
    denseBbCache_.fetch(block,
                        space_.blockIndex().meta(block).sizeBytes);

    if (denseHeads_.isHead(block) &&
        denseHeads_.recordExecution(block)) {
        buildTrace(state_.pc);
        return;
    }

    interp::BlockResult result = interp_.executeBlock(state_, block);
    stats_.instructionsInterpreted += result.instructions;
    ++stats_.blocksInterpreted;
    if (!result.halted && result.backwardTransfer) {
        guest::BlockId next_bid = space_.blockIdAt(result.next);
        if (next_bid != guest::kInvalidBlockId &&
            traceIdOfBlock_[next_bid] == cache::kInvalidTrace) {
            denseHeads_.markHead(next_bid,
                                 TraceHeadKind::BackwardBranchTarget);
        }
    }
}

bool
Runtime::isTraceEntry(isa::GuestAddr addr) const
{
    if (frontend_ == FrontEnd::Legacy) {
        return traceIdOfEntry_.count(addr) != 0;
    }
    guest::BlockId bid = space_.blockIdAt(addr);
    return bid != guest::kInvalidBlockId &&
           traceIdOfBlock_[bid] != cache::kInvalidTrace;
}

bool
Runtime::isHeadAt(isa::GuestAddr addr) const
{
    if (frontend_ == FrontEnd::Legacy) {
        return heads_.isHead(addr);
    }
    guest::BlockId bid = space_.blockIdAt(addr);
    return bid != guest::kInvalidBlockId && denseHeads_.isHead(bid);
}

void
Runtime::removeHeadAt(isa::GuestAddr addr)
{
    if (frontend_ == FrontEnd::Legacy) {
        heads_.remove(addr);
        return;
    }
    guest::BlockId bid = space_.blockIdAt(addr);
    if (bid != guest::kInvalidBlockId) {
        denseHeads_.remove(bid);
    }
}

void
Runtime::fetchBlock(isa::GuestAddr addr, const isa::BasicBlock &source,
                    guest::ModuleId module)
{
    if (frontend_ == FrontEnd::Legacy) {
        bbCache_.fetch(addr, source, module);
        return;
    }
    guest::BlockId bid = space_.blockIdAt(addr);
    denseBbCache_.fetch(bid, source.sizeBytes());
}

void
Runtime::buildTrace(isa::GuestAddr entry)
{
    removeHeadAt(entry);

    auto known = traceIdOfEntry_.find(entry);
    if (known != traceIdOfEntry_.end()) {
        // The trace exists but may have been evicted; reinstall it.
        if (!manager_.contains(known->second)) {
            if (regenerate(known->second)) {
                ++stats_.traceRegenerations;
            }
        }
        return;
    }

    const guest::GuestModule *module = space_.moduleAt(entry);
    if (module == nullptr) {
        GENCACHE_PANIC("trace head {} is not mapped", entry);
    }
    // Canonical identity: (module uid, module-relative entry offset).
    // Deterministic per code location, equal in every process mapping
    // the module — the key the cross-process shared tier matches on.
    isa::GuestAddr offset = entry - module->baseAddr();
    if (offset > 0xffffffffULL) {
        GENCACHE_PANIC("trace entry offset {} exceeds 32 bits in '{}'",
                       offset, module->name());
    }
    cache::TraceId tid = cache::canonicalTraceId(
        module->uid(), static_cast<std::uint32_t>(offset));
    builder_.begin(tid, entry, module->id());
    std::vector<const isa::BasicBlock *> path;

    // Trace generation mode: execute and record until a stop
    // condition (§4.1): backward branch, existing trace (head),
    // indirect transfer, module boundary, or the block cap. This is
    // a cold path (once per built trace), shared by both front ends;
    // the mode-dispatching helpers keep each mode's head and bb-cache
    // state coherent with its hot loops.
    while (true) {
        isa::GuestAddr pc = state_.pc;
        const isa::BasicBlock *source = space_.blockAt(pc);
        if (source == nullptr) {
            GENCACHE_PANIC("trace generation at unmapped pc {}", pc);
        }
        fetchBlock(pc, *source, module->id());
        interp::BlockResult result = interp_.executeBlock(state_);
        stats_.instructionsInterpreted += result.instructions;
        ++stats_.blocksInterpreted;
        builder_.append(*source, result.next);
        path.push_back(source);

        if (result.halted) {
            break;
        }
        if (isa::isIndirect(source->terminator().opcode)) {
            break;
        }
        if (result.backwardTransfer) {
            break;
        }
        if (isTraceEntry(result.next) || isHeadAt(result.next)) {
            break;
        }
        const guest::GuestModule *next_module =
            space_.moduleAt(result.next);
        if (next_module == nullptr ||
            next_module->id() != module->id()) {
            break;
        }
        if (builder_.blockCount() >= kMaxTraceBlocks) {
            break;
        }
    }

    Trace trace = builder_.finish();

    if (optimizeTraces_) {
        // Optimize the superblock; the cache stores the optimized
        // code, so the fragment size is the optimized size (plus the
        // unchanged exit stubs).
        opt::Superblock superblock = opt::buildSuperblock(path);
        opt::OptResult opt_result = optimizer_.optimize(superblock);
        ++stats_.tracesOptimized;
        stats_.optimizerBytesSaved += opt_result.bytesSaved();
        stats_.optimizerInstsRemoved +=
            opt_result.instsBefore - opt_result.instsAfter;
        // One stub per side exit plus the fall-off-the-end stub,
        // mirroring TraceBuilder's accounting.
        std::uint32_t stubs =
            kExitStubBytes *
            static_cast<std::uint32_t>(
                superblock.sideExitCount() + 1);
        trace.sizeBytes = superblock.codeBytes() + stubs;
    }

    // Resolve the dense block-id path once, at build time, so fast
    // trace execution reads the predecoded streams directly.
    trace.blockIds.reserve(trace.blockAddrs.size());
    for (isa::GuestAddr addr : trace.blockAddrs) {
        trace.blockIds.push_back(space_.blockIdAt(addr));
    }

    Trace &stored = registerTrace(tid, std::move(trace));
    ++stats_.tracesBuilt;
    log_.append(tracelog::Event::traceCreate(now(), tid,
                                             stored.sizeBytes,
                                             stored.module));
    installTrace(stored);
}

Trace &
Runtime::registerTrace(cache::TraceId id, Trace trace)
{
    // Flatten the path's predecoded blocks into one contiguous stream
    // (the trace-cache "emitted code" the fast path executes from).
    const guest::BlockIndex &index = space_.blockIndex();
    trace.stream.clear();
    trace.streamEnd.clear();
    for (guest::BlockId block : trace.blockIds) {
        trace.stream.insert(trace.stream.end(),
                            index.instBegin(block),
                            index.instEnd(block));
        trace.streamEnd.push_back(
            static_cast<std::uint32_t>(trace.stream.size()));
    }

    // Allocate the dense process-local slot the hot paths index by
    // (canonical ids are sparse, so they cannot index flat arrays).
    trace.slot = static_cast<TraceSlot>(traceBySlot_.size());

    isa::GuestAddr entry = trace.entry;
    auto [it, inserted] = traces_.emplace(id, std::move(trace));
    if (!inserted) {
        GENCACHE_PANIC("canonical trace id {} registered twice", id);
    }
    traceIdOfEntry_.emplace(entry, id);
    guest::BlockId bid = space_.blockIdAt(entry);
    if (bid != guest::kInvalidBlockId) {
        traceIdOfBlock_[bid] = id;
        slotOfBlock_[bid] = it->second.slot;
    }
    traceBySlot_.push_back(&it->second);
    return it->second;
}

bool
Runtime::regenerate(cache::TraceId id)
{
    auto it = traces_.find(id);
    if (it == traces_.end()) {
        return false;
    }
    return installTrace(it->second);
}

bool
Runtime::installTrace(const Trace &trace)
{
    if (!manager_.insert(trace.id, trace.sizeBytes, trace.module,
                         now())) {
        return false;
    }
    linker_.onTraceInserted(trace);
    return true;
}

void
Runtime::onMiss(cache::TraceId id, TimeUs time)
{
    if (chained_ != nullptr) {
        chained_->onMiss(id, time);
    }
}

void
Runtime::onHit(cache::TraceId id, cache::Generation gen, TimeUs time)
{
    if (chained_ != nullptr) {
        chained_->onHit(id, gen, time);
    }
}

void
Runtime::onInsert(const cache::Fragment &frag, cache::Generation gen,
                  TimeUs time)
{
    if (chained_ != nullptr) {
        chained_->onInsert(frag, gen, time);
    }
}

void
Runtime::onEvict(const cache::Fragment &frag, cache::Generation gen,
                 cache::EvictReason reason, TimeUs time)
{
    if (cache::isDeletion(reason)) {
        linker_.onTraceEvicted(frag.id);
    }
    if (chained_ != nullptr) {
        chained_->onEvict(frag, gen, reason, time);
    }
}

void
Runtime::onPromote(const cache::Fragment &frag, cache::Generation from,
                   cache::Generation to, TimeUs time)
{
    linker_.onTraceMoved(frag.id);
    if (chained_ != nullptr) {
        chained_->onPromote(frag, from, to, time);
    }
}

} // namespace gencache::runtime
