#include "runtime/runtime.h"

#include "support/logging.h"

namespace gencache::runtime {

Runtime::Runtime(guest::AddressSpace &space,
                 cache::CacheManager &manager,
                 std::uint32_t trace_threshold)
    : space_(space), manager_(manager), interp_(space),
      heads_(trace_threshold)
{
    manager_.setListener(this);
    std::uint64_t footprint = 0;
    for (const guest::GuestModule *module : space_.mappedModules()) {
        log_.append(tracelog::Event::moduleLoad(0, module->id()));
        footprint += module->sizeBytes();
    }
    log_.setFootprintBytes(footprint);
}

void
Runtime::loadModule(const guest::GuestModule &module)
{
    space_.map(module);
    log_.append(tracelog::Event::moduleLoad(now(), module.id()));
    log_.setFootprintBytes(log_.footprintBytes() + module.sizeBytes());
    if (checkpointHook_) {
        checkpointHook_(*this);
    }
}

void
Runtime::unloadModule(guest::ModuleId module)
{
    // Order matters: the manager's invalidation fires onEvict events
    // that unlink evicted traces, so the linker must still know them.
    manager_.invalidateModule(module, now());

    for (auto it = traces_.begin(); it != traces_.end();) {
        if (it->second.module == module) {
            traceIdOfEntry_.erase(it->second.entry);
            it = traces_.erase(it);
        } else {
            ++it;
        }
    }
    bbCache_.invalidateModule(module);
    space_.unmap(module);
    log_.append(tracelog::Event::moduleUnload(now(), module));
    if (checkpointHook_) {
        checkpointHook_(*this);
    }
}

void
Runtime::start(isa::GuestAddr entry)
{
    state_.reset(entry);
    started_ = true;
}

std::uint64_t
Runtime::run(std::uint64_t max_instructions)
{
    if (!started_) {
        GENCACHE_PANIC("Runtime::run before start()");
    }
    std::uint64_t begin = interp_.instructionsRetired();
    while (!state_.halted &&
           interp_.instructionsRetired() - begin < max_instructions) {
        dispatch();
    }
    log_.setDuration(now());
    if (checkpointHook_) {
        checkpointHook_(*this);
    }
    return interp_.instructionsRetired() - begin;
}

void
Runtime::dispatch()
{
    isa::GuestAddr pc = state_.pc;
    auto it = traceIdOfEntry_.find(pc);
    if (it != traceIdOfEntry_.end()) {
        cache::TraceId tid = it->second;
        if (!manager_.lookup(tid, now())) {
            // Code cache miss: regenerate the trace (§6.2's miss cost:
            // two context switches, a regeneration, and a copy).
            if (regenerate(tid)) {
                ++stats_.traceRegenerations;
            } else {
                // Cannot be cached right now: fall back to the
                // interpreter for this block.
                interpretBlock();
                return;
            }
        }
        ++stats_.contextSwitches; // dispatcher -> code cache
        cache::TraceId current = tid;
        while (current != cache::kInvalidTrace && !state_.halted) {
            current = executeTrace(current);
        }
        ++stats_.contextSwitches; // code cache -> dispatcher
        return;
    }
    interpretBlock();
}

cache::TraceId
Runtime::executeTrace(cache::TraceId id)
{
    auto it = traces_.find(id);
    if (it == traces_.end()) {
        GENCACHE_PANIC("executing unknown trace {}", id);
    }
    const Trace &trace = it->second;
    if (state_.pc != trace.entry) {
        GENCACHE_PANIC("trace {} entered at {} (entry {})", id,
                       state_.pc, trace.entry);
    }
    ++stats_.traceExecutions;
    log_.append(tracelog::Event::traceExec(now(), id));

    std::size_t index = 0;
    while (index < trace.blockAddrs.size()) {
        interp::BlockResult result = interp_.executeBlock(state_);
        stats_.instructionsInTraces += result.instructions;
        if (result.halted) {
            return cache::kInvalidTrace;
        }
        if (index + 1 < trace.blockAddrs.size() &&
            result.next == trace.blockAddrs[index + 1]) {
            ++index;
            continue;
        }
        break;
    }

    // Trace exit. Tail-chain into a linked resident trace, otherwise
    // return to the dispatcher and mark the exit as a trace head.
    isa::GuestAddr target = state_.pc;
    cache::TraceId next = linker_.traceAt(target);
    if (next != cache::kInvalidTrace && linker_.linked(id, next)) {
        if (manager_.lookup(next, now())) {
            return next;
        }
    }
    if (space_.blockAt(target) != nullptr &&
        traceIdOfEntry_.count(target) == 0) {
        heads_.markHead(target, TraceHeadKind::TraceExit);
    }
    return cache::kInvalidTrace;
}

void
Runtime::interpretBlock()
{
    isa::GuestAddr pc = state_.pc;
    const guest::GuestModule *module = space_.moduleAt(pc);
    if (module == nullptr) {
        GENCACHE_PANIC("guest pc {} is not in any mapped module", pc);
    }
    const isa::BasicBlock *source = space_.blockAt(pc);
    if (source == nullptr) {
        GENCACHE_PANIC("guest pc {} is not a block start", pc);
    }
    bbCache_.fetch(pc, *source, module->id());

    if (heads_.isHead(pc) && heads_.recordExecution(pc)) {
        buildTrace(pc);
        return;
    }

    interp::BlockResult result = interp_.executeBlock(state_);
    stats_.instructionsInterpreted += result.instructions;
    ++stats_.blocksInterpreted;
    if (!result.halted && result.backwardTransfer) {
        // Target of a backward branch: candidate loop head (§4.1).
        if (traceIdOfEntry_.count(result.next) == 0) {
            heads_.markHead(result.next,
                            TraceHeadKind::BackwardBranchTarget);
        }
    }
}

void
Runtime::buildTrace(isa::GuestAddr entry)
{
    heads_.clearHead(entry);

    auto known = traceIdOfEntry_.find(entry);
    if (known != traceIdOfEntry_.end()) {
        // The trace exists but may have been evicted; reinstall it.
        if (!manager_.contains(known->second)) {
            if (regenerate(known->second)) {
                ++stats_.traceRegenerations;
            }
        }
        return;
    }

    const guest::GuestModule *module = space_.moduleAt(entry);
    if (module == nullptr) {
        GENCACHE_PANIC("trace head {} is not mapped", entry);
    }
    cache::TraceId tid = nextTraceId_++;
    builder_.begin(tid, entry, module->id());
    std::vector<const isa::BasicBlock *> path;

    // Trace generation mode: execute and record until a stop
    // condition (§4.1): backward branch, existing trace (head),
    // indirect transfer, module boundary, or the block cap.
    while (true) {
        isa::GuestAddr pc = state_.pc;
        const isa::BasicBlock *source = space_.blockAt(pc);
        if (source == nullptr) {
            GENCACHE_PANIC("trace generation at unmapped pc {}", pc);
        }
        bbCache_.fetch(pc, *source, module->id());
        interp::BlockResult result = interp_.executeBlock(state_);
        stats_.instructionsInterpreted += result.instructions;
        ++stats_.blocksInterpreted;
        builder_.append(*source, result.next);
        path.push_back(source);

        if (result.halted) {
            break;
        }
        if (isa::isIndirect(source->terminator().opcode)) {
            break;
        }
        if (result.backwardTransfer) {
            break;
        }
        if (traceIdOfEntry_.count(result.next) != 0 ||
            heads_.isHead(result.next)) {
            break;
        }
        const guest::GuestModule *next_module =
            space_.moduleAt(result.next);
        if (next_module == nullptr ||
            next_module->id() != module->id()) {
            break;
        }
        if (builder_.blockCount() >= kMaxTraceBlocks) {
            break;
        }
    }

    Trace trace = builder_.finish();

    if (optimizeTraces_) {
        // Optimize the superblock; the cache stores the optimized
        // code, so the fragment size is the optimized size (plus the
        // unchanged exit stubs).
        opt::Superblock superblock = opt::buildSuperblock(path);
        opt::OptResult opt_result = optimizer_.optimize(superblock);
        ++stats_.tracesOptimized;
        stats_.optimizerBytesSaved += opt_result.bytesSaved();
        stats_.optimizerInstsRemoved +=
            opt_result.instsBefore - opt_result.instsAfter;
        // One stub per side exit plus the fall-off-the-end stub,
        // mirroring TraceBuilder's accounting.
        std::uint32_t stubs =
            kExitStubBytes *
            static_cast<std::uint32_t>(
                superblock.sideExitCount() + 1);
        trace.sizeBytes = superblock.codeBytes() + stubs;
    }

    traces_.emplace(tid, trace);
    traceIdOfEntry_.emplace(entry, tid);
    ++stats_.tracesBuilt;
    log_.append(tracelog::Event::traceCreate(now(), tid,
                                             trace.sizeBytes,
                                             trace.module));
    installTrace(trace);
}

bool
Runtime::regenerate(cache::TraceId id)
{
    auto it = traces_.find(id);
    if (it == traces_.end()) {
        return false;
    }
    return installTrace(it->second);
}

bool
Runtime::installTrace(const Trace &trace)
{
    if (!manager_.insert(trace.id, trace.sizeBytes, trace.module,
                         now())) {
        return false;
    }
    linker_.onTraceInserted(trace);
    return true;
}

void
Runtime::onMiss(cache::TraceId id, TimeUs time)
{
    if (chained_ != nullptr) {
        chained_->onMiss(id, time);
    }
}

void
Runtime::onHit(cache::TraceId id, cache::Generation gen, TimeUs time)
{
    if (chained_ != nullptr) {
        chained_->onHit(id, gen, time);
    }
}

void
Runtime::onInsert(const cache::Fragment &frag, cache::Generation gen,
                  TimeUs time)
{
    if (chained_ != nullptr) {
        chained_->onInsert(frag, gen, time);
    }
}

void
Runtime::onEvict(const cache::Fragment &frag, cache::Generation gen,
                 cache::EvictReason reason, TimeUs time)
{
    if (cache::isDeletion(reason)) {
        linker_.onTraceEvicted(frag.id);
    }
    if (chained_ != nullptr) {
        chained_->onEvict(frag, gen, reason, time);
    }
}

void
Runtime::onPromote(const cache::Fragment &frag, cache::Generation from,
                   cache::Generation to, TimeUs time)
{
    linker_.onTraceMoved(frag.id);
    if (chained_ != nullptr) {
        chained_->onPromote(frag, from, to, time);
    }
}

} // namespace gencache::runtime
