/**
 * @file
 * The basic-block cache (paper §4.1).
 *
 * Rather than interpreting cold code, DynamoRIO copies every executed
 * basic block into a basic-block cache before running it. We model the
 * same structure: a map from guest start address to a private copy of
 * the block, with per-module indexing so unmapped modules can be
 * invalidated, plus copy statistics for the cost accounting.
 */

#ifndef GENCACHE_RUNTIME_BB_CACHE_H
#define GENCACHE_RUNTIME_BB_CACHE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "guest/block_index.h"
#include "guest/module.h"
#include "isa/basic_block.h"

namespace gencache::runtime {

/** Statistics of the basic-block cache. */
struct BbCacheStats
{
    std::uint64_t copies = 0;       ///< blocks copied in
    std::uint64_t copiedBytes = 0;
    std::uint64_t hits = 0;         ///< lookups served from the cache
    std::uint64_t invalidations = 0; ///< blocks dropped by unmap
};

/** Software cache of copied basic blocks. */
class BasicBlockCache
{
  public:
    BasicBlockCache() = default;

    /**
     * @return the cached copy of the block at @p addr, copying it in
     * from @p source on first use (the returned pointer is stable
     * until the block is invalidated).
     */
    const isa::BasicBlock *fetch(isa::GuestAddr addr,
                                 const isa::BasicBlock &source,
                                 guest::ModuleId module);

    /** @return the cached copy, or nullptr when absent. */
    const isa::BasicBlock *lookup(isa::GuestAddr addr) const;

    /** Drop every block belonging to @p module. */
    void invalidateModule(guest::ModuleId module);

    /** @return number of resident blocks. */
    std::size_t blockCount() const { return blocks_.size(); }

    /** @return total bytes of resident blocks. */
    std::uint64_t usedBytes() const { return usedBytes_; }

    const BbCacheStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        isa::BasicBlock block;
        guest::ModuleId module = guest::kInvalidModule;
    };

    std::unordered_map<isa::GuestAddr, Entry> blocks_;
    std::uint64_t usedBytes_ = 0;
    BbCacheStats stats_;
};

/**
 * Flat basic-block cache for the front-end fast path. The fast path
 * executes straight from the predecoded stream, so the "copy into the
 * bb cache" is pure bookkeeping: a per-dense-block-id residency bit
 * plus the same BbCacheStats the hash-map cache keeps — which lets
 * the identity test assert stat-for-stat equality between front ends.
 */
class DenseBlockCache
{
  public:
    DenseBlockCache() = default;

    /** Grow the residency table to cover ids below @p limit. */
    void ensureCapacity(guest::BlockId limit)
    {
        if (limit > sizes_.size()) {
            sizes_.resize(limit, 0);
        }
    }

    /** Count a fetch of block @p block (@p size_bytes big): a copy on
     *  first touch, a hit afterwards. */
    void fetch(guest::BlockId block, std::uint32_t size_bytes)
    {
        if (sizes_[block] != 0) {
            ++stats_.hits;
            return;
        }
        sizes_[block] = size_bytes;
        ++stats_.copies;
        stats_.copiedBytes += size_bytes;
        usedBytes_ += size_bytes;
        ++blockCount_;
    }

    /** @return true when block @p block is resident. */
    bool contains(guest::BlockId block) const
    {
        return block < sizes_.size() && sizes_[block] != 0;
    }

    /** Drop every resident block with id in [first, last) (module
     *  unload invalidation). */
    void invalidateRange(guest::BlockId first, guest::BlockId last)
    {
        for (guest::BlockId block = first; block < last; ++block) {
            if (sizes_[block] != 0) {
                usedBytes_ -= sizes_[block];
                sizes_[block] = 0;
                ++stats_.invalidations;
                --blockCount_;
            }
        }
    }

    std::size_t blockCount() const { return blockCount_; }
    std::uint64_t usedBytes() const { return usedBytes_; }
    const BbCacheStats &stats() const { return stats_; }

  private:
    std::vector<std::uint32_t> sizes_; ///< 0 = not resident
    std::size_t blockCount_ = 0;
    std::uint64_t usedBytes_ = 0;
    BbCacheStats stats_;
};

} // namespace gencache::runtime

#endif // GENCACHE_RUNTIME_BB_CACHE_H
