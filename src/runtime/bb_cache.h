/**
 * @file
 * The basic-block cache (paper §4.1).
 *
 * Rather than interpreting cold code, DynamoRIO copies every executed
 * basic block into a basic-block cache before running it. We model the
 * same structure: a map from guest start address to a private copy of
 * the block, with per-module indexing so unmapped modules can be
 * invalidated, plus copy statistics for the cost accounting.
 */

#ifndef GENCACHE_RUNTIME_BB_CACHE_H
#define GENCACHE_RUNTIME_BB_CACHE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "guest/module.h"
#include "isa/basic_block.h"

namespace gencache::runtime {

/** Statistics of the basic-block cache. */
struct BbCacheStats
{
    std::uint64_t copies = 0;       ///< blocks copied in
    std::uint64_t copiedBytes = 0;
    std::uint64_t hits = 0;         ///< lookups served from the cache
    std::uint64_t invalidations = 0; ///< blocks dropped by unmap
};

/** Software cache of copied basic blocks. */
class BasicBlockCache
{
  public:
    BasicBlockCache() = default;

    /**
     * @return the cached copy of the block at @p addr, copying it in
     * from @p source on first use (the returned pointer is stable
     * until the block is invalidated).
     */
    const isa::BasicBlock *fetch(isa::GuestAddr addr,
                                 const isa::BasicBlock &source,
                                 guest::ModuleId module);

    /** @return the cached copy, or nullptr when absent. */
    const isa::BasicBlock *lookup(isa::GuestAddr addr) const;

    /** Drop every block belonging to @p module. */
    void invalidateModule(guest::ModuleId module);

    /** @return number of resident blocks. */
    std::size_t blockCount() const { return blocks_.size(); }

    /** @return total bytes of resident blocks. */
    std::uint64_t usedBytes() const { return usedBytes_; }

    const BbCacheStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        isa::BasicBlock block;
        guest::ModuleId module = guest::kInvalidModule;
    };

    std::unordered_map<isa::GuestAddr, Entry> blocks_;
    std::uint64_t usedBytes_ = 0;
    BbCacheStats stats_;
};

} // namespace gencache::runtime

#endif // GENCACHE_RUNTIME_BB_CACHE_H
