/**
 * @file
 * Trace-head detection and hotness counters (paper §4.1).
 *
 * Blocks become trace heads when they are (a) the target of a backward
 * branch, or (b) an exit from an existing trace. Each execution of a
 * trace head increments a counter; crossing the trace creation
 * threshold (50 executions, matching DynamoRIO) triggers trace
 * generation mode.
 */

#ifndef GENCACHE_RUNTIME_TRACE_HEAD_H
#define GENCACHE_RUNTIME_TRACE_HEAD_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "guest/block_index.h"
#include "isa/instruction.h"

namespace gencache::runtime {

/** DynamoRIO's default trace creation threshold. */
constexpr std::uint32_t kDefaultTraceThreshold = 50;

/** Why an address became a trace head. */
enum class TraceHeadKind : std::uint8_t {
    BackwardBranchTarget,
    TraceExit,
};

/** Counter table for candidate trace heads. */
class TraceHeadTable
{
  public:
    explicit TraceHeadTable(
        std::uint32_t threshold = kDefaultTraceThreshold);

    std::uint32_t threshold() const { return threshold_; }

    /** Register @p addr as a trace head (idempotent). */
    void markHead(isa::GuestAddr addr, TraceHeadKind kind);

    /** @return true when @p addr is a registered trace head. */
    bool isHead(isa::GuestAddr addr) const;

    /**
     * Count one execution of trace head @p addr.
     * @return true when the counter just reached the threshold (the
     * caller should enter trace generation mode).
     */
    bool recordExecution(isa::GuestAddr addr);

    /** Remove the head (after its trace was built) so the counter
     *  stops; re-marking later restarts from zero. Removing an
     *  address that is not a head is a no-op. */
    void remove(isa::GuestAddr addr);

    /** Remove every head in the address range [base, end) (module
     *  unload: its counters must not survive a later remap). */
    void removeRange(isa::GuestAddr base, isa::GuestAddr end);

    /** Current counter value; 0 when not a head. */
    std::uint32_t count(isa::GuestAddr addr) const;

    std::size_t headCount() const { return counters_.size(); }

  private:
    struct HeadInfo
    {
        std::uint32_t count = 0;
        TraceHeadKind kind = TraceHeadKind::BackwardBranchTarget;
    };

    std::uint32_t threshold_;
    std::unordered_map<isa::GuestAddr, HeadInfo> counters_;
};

/**
 * Flat trace-head counters for the front-end fast path: the same
 * contract as TraceHeadTable, but keyed by dense `guest::BlockId` so
 * the per-block-execution hot operations (isHead / recordExecution)
 * are vector reads instead of hash probes. The runtime uses exactly
 * one of the two tables, selected by its FrontEnd mode.
 */
class DenseTraceHeadTable
{
  public:
    explicit DenseTraceHeadTable(
        std::uint32_t threshold = kDefaultTraceThreshold)
        : threshold_(threshold)
    {
    }

    std::uint32_t threshold() const { return threshold_; }

    /** Grow the side tables to cover ids below @p limit (called after
     *  every module load; ids are never reused). */
    void ensureCapacity(guest::BlockId limit)
    {
        if (limit > kinds_.size()) {
            kinds_.resize(limit, kNotAHead);
            counts_.resize(limit, 0);
        }
    }

    void markHead(guest::BlockId block, TraceHeadKind kind)
    {
        if (kinds_[block] == kNotAHead) {
            kinds_[block] = static_cast<std::uint8_t>(kind);
            counts_[block] = 0;
            ++headCount_;
        }
    }

    bool isHead(guest::BlockId block) const
    {
        return kinds_[block] != kNotAHead;
    }

    bool recordExecution(guest::BlockId block)
    {
        if (kinds_[block] == kNotAHead) {
            return false;
        }
        return ++counts_[block] == threshold_;
    }

    void remove(guest::BlockId block)
    {
        if (kinds_[block] != kNotAHead) {
            kinds_[block] = kNotAHead;
            counts_[block] = 0;
            --headCount_;
        }
    }

    /** Remove every head with id in [first, last) (module unload). */
    void removeRange(guest::BlockId first, guest::BlockId last)
    {
        for (guest::BlockId block = first; block < last; ++block) {
            remove(block);
        }
    }

    std::uint32_t count(guest::BlockId block) const
    {
        return block < counts_.size() ? counts_[block] : 0;
    }

    std::size_t headCount() const { return headCount_; }

  private:
    static constexpr std::uint8_t kNotAHead = 0xff;

    std::uint32_t threshold_;
    std::vector<std::uint8_t> kinds_;    ///< TraceHeadKind or kNotAHead
    std::vector<std::uint32_t> counts_;
    std::size_t headCount_ = 0;
};

} // namespace gencache::runtime

#endif // GENCACHE_RUNTIME_TRACE_HEAD_H
