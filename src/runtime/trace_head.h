/**
 * @file
 * Trace-head detection and hotness counters (paper §4.1).
 *
 * Blocks become trace heads when they are (a) the target of a backward
 * branch, or (b) an exit from an existing trace. Each execution of a
 * trace head increments a counter; crossing the trace creation
 * threshold (50 executions, matching DynamoRIO) triggers trace
 * generation mode.
 */

#ifndef GENCACHE_RUNTIME_TRACE_HEAD_H
#define GENCACHE_RUNTIME_TRACE_HEAD_H

#include <cstdint>
#include <unordered_map>

#include "isa/instruction.h"

namespace gencache::runtime {

/** DynamoRIO's default trace creation threshold. */
constexpr std::uint32_t kDefaultTraceThreshold = 50;

/** Why an address became a trace head. */
enum class TraceHeadKind : std::uint8_t {
    BackwardBranchTarget,
    TraceExit,
};

/** Counter table for candidate trace heads. */
class TraceHeadTable
{
  public:
    explicit TraceHeadTable(
        std::uint32_t threshold = kDefaultTraceThreshold);

    std::uint32_t threshold() const { return threshold_; }

    /** Register @p addr as a trace head (idempotent). */
    void markHead(isa::GuestAddr addr, TraceHeadKind kind);

    /** @return true when @p addr is a registered trace head. */
    bool isHead(isa::GuestAddr addr) const;

    /**
     * Count one execution of trace head @p addr.
     * @return true when the counter just reached the threshold (the
     * caller should enter trace generation mode).
     */
    bool recordExecution(isa::GuestAddr addr);

    /** Remove the head (after its trace was built) so the counter
     *  stops; re-marking later restarts from zero. */
    void clearHead(isa::GuestAddr addr);

    /** Current counter value; 0 when not a head. */
    std::uint32_t count(isa::GuestAddr addr) const;

    std::size_t headCount() const { return counters_.size(); }

  private:
    struct HeadInfo
    {
        std::uint32_t count = 0;
        TraceHeadKind kind = TraceHeadKind::BackwardBranchTarget;
    };

    std::uint32_t threshold_;
    std::unordered_map<isa::GuestAddr, HeadInfo> counters_;
};

} // namespace gencache::runtime

#endif // GENCACHE_RUNTIME_TRACE_HEAD_H
