/**
 * @file
 * Code traces (superblocks) and Next-Executed-Tail construction
 * (paper §4.1, following Duesterwald and Bala's NET policy).
 */

#ifndef GENCACHE_RUNTIME_TRACE_H
#define GENCACHE_RUNTIME_TRACE_H

#include <cstdint>
#include <vector>

#include "codecache/fragment.h"
#include "guest/block_index.h"
#include "guest/module.h"
#include "isa/basic_block.h"

namespace gencache::runtime {

/**
 * Process-local execution handle of a trace: a small dense index,
 * assigned sequentially at registration and never reused, that the
 * hot paths use for flat-array lookups. Distinct from cache::TraceId,
 * which is the canonical process-independent (module uid, offset)
 * identity: ids name traces across processes, slots index this
 * process's tables.
 */
using TraceSlot = std::uint32_t;

/** Sentinel for "no slot". */
constexpr TraceSlot kInvalidSlot = ~0u;

/**
 * A superblock: single-entry, multiple-exit sequence of basic blocks
 * stitched along the executed path.
 */
struct Trace
{
    cache::TraceId id = cache::kInvalidTrace;
    TraceSlot slot = kInvalidSlot; ///< dense process-local handle
    isa::GuestAddr entry = 0;
    guest::ModuleId module = guest::kInvalidModule;
    std::vector<isa::GuestAddr> blockAddrs; ///< path, in order
    std::uint32_t sizeBytes = 0;            ///< code + exit stubs

    /** Dense ids of blockAddrs (same order), resolved at build time
     *  so the fast path executes straight from the predecoded
     *  streams. Valid while the trace's module stays mapped. */
    std::vector<guest::BlockId> blockIds;

    /** Contiguous predecoded copy of the whole path (the trace-cache
     *  "emitted code"): every block's instructions back to back, so
     *  trace execution never leaves one array. Filled when the trace
     *  is registered. */
    std::vector<guest::PredecodedInst> stream;
    /** Exclusive end offset of each block's segment in @c stream. */
    std::vector<std::uint32_t> streamEnd;

    /** Guest addresses control can leave the trace to: every side exit
     *  of a conditional plus the final fall-off target. Indirect exits
     *  are not included (they go through the dispatcher). */
    std::vector<isa::GuestAddr> exitTargets;

    std::size_t blockCount() const { return blockAddrs.size(); }
};

/** Bytes of the exit stub emitted per trace exit (models the code a
 *  dynamic optimizer appends to route exits back to the dispatcher). */
constexpr std::uint32_t kExitStubBytes = 16;

/** Hard cap on blocks per trace (matches DynamoRIO's bounded traces). */
constexpr std::size_t kMaxTraceBlocks = 64;

/**
 * Incrementally builds a trace while the runtime is in trace
 * generation mode: blocks are appended along the executed path until a
 * stop condition (backward taken branch, existing trace head / trace
 * entry, indirect transfer, or the block cap) is met.
 */
class TraceBuilder
{
  public:
    /** Begin a trace at @p entry inside @p module. */
    void begin(cache::TraceId id, isa::GuestAddr entry,
               guest::ModuleId module);

    /** @return true while a trace is being recorded. */
    bool active() const { return active_; }

    /**
     * Append @p block (just executed) with the resolved successor
     * @p next.
     */
    void append(const isa::BasicBlock &block, isa::GuestAddr next);

    /** Blocks recorded so far. */
    std::size_t blockCount() const { return trace_.blockAddrs.size(); }

    /** Finish and return the trace; the builder resets. */
    Trace finish();

    /** Abandon the recording (e.g. guest halted mid-trace). */
    void abort();

  private:
    Trace trace_;
    bool active_ = false;
    isa::GuestAddr lastNext_ = 0;   ///< continuation of the last block
    bool lastIndirect_ = false;     ///< last terminator was indirect
};

} // namespace gencache::runtime

#endif // GENCACHE_RUNTIME_TRACE_H
