#include "runtime/linker.h"

#include "support/logging.h"

namespace gencache::runtime {

void
TraceLinker::onTraceInserted(const Trace &trace)
{
    if (nodes_.count(trace.id) != 0) {
        GENCACHE_PANIC("trace {} already known to the linker",
                       trace.id);
    }
    if (trace.slot == kInvalidSlot) {
        GENCACHE_PANIC("trace {} inserted without a slot", trace.id);
    }
    Node node;
    node.entry = trace.entry;
    node.slot = trace.slot;
    node.exitTargets = trace.exitTargets;
    auto [pos, inserted] = nodes_.emplace(trace.id, std::move(node));
    byEntry_.emplace(trace.entry, trace.id);

    // Outgoing: patch this trace's exits to resident entries. The
    // trace itself is already registered, so loop traces whose exit
    // returns to their own entry are self-linked (as DynamoRIO links
    // loops), avoiding a dispatcher round trip per iteration.
    for (isa::GuestAddr target : pos->second.exitTargets) {
        auto it = byEntry_.find(target);
        if (it != byEntry_.end() &&
            pos->second.outgoing.insert(it->second).second) {
            nodes_[it->second].incoming.insert(trace.id);
            ++stats_.linksPatched;
        }
    }

    // Incoming: patch resident exits that target our entry.
    for (auto &[other_id, other] : nodes_) {
        if (other_id == trace.id) {
            continue;
        }
        for (isa::GuestAddr target : other.exitTargets) {
            if (target == trace.entry &&
                other.outgoing.insert(trace.id).second) {
                nodes_[trace.id].incoming.insert(other_id);
                ++stats_.linksPatched;
            }
        }
    }

    // Direct-chaining cache: resolve this trace's exit slots (every
    // resident target is now patched, including a self-link), then
    // point every resident slot aimed at our entry to us.
    if (exitCache_.size() <= trace.slot) {
        exitCache_.resize(trace.slot + 1);
    }
    ExitCache &cache = exitCache_[trace.slot];
    cache.targets = trace.exitTargets;
    cache.slots.assign(cache.targets.size(), kInvalidSlot);
    for (std::size_t i = 0; i < cache.targets.size(); ++i) {
        auto hit = byEntry_.find(cache.targets[i]);
        if (hit != byEntry_.end()) {
            cache.slots[i] = nodes_.at(hit->second).slot;
        }
    }
    retargetSlots(trace.entry, trace.slot);
}

void
TraceLinker::retargetSlots(isa::GuestAddr entry, TraceSlot slot)
{
    for (const auto &[other_id, other] : nodes_) {
        ExitCache &cache = exitCache_[other.slot];
        for (std::size_t i = 0; i < cache.targets.size(); ++i) {
            if (cache.targets[i] == entry) {
                cache.slots[i] = slot;
            }
        }
    }
}

void
TraceLinker::onTraceEvicted(cache::TraceId id)
{
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
        GENCACHE_PANIC("evicting trace {} unknown to the linker", id);
    }
    Node &node = it->second;
    for (cache::TraceId in : node.incoming) {
        auto other = nodes_.find(in);
        if (other != nodes_.end()) {
            other->second.outgoing.erase(id);
            ++stats_.linksUnpatched;
            // Unpatch the cached jump slots of the incoming trace.
            ExitCache &cache = exitCache_[other->second.slot];
            for (std::size_t i = 0; i < cache.slots.size(); ++i) {
                if (cache.slots[i] == node.slot) {
                    cache.slots[i] = kInvalidSlot;
                }
            }
        }
    }
    for (cache::TraceId out : node.outgoing) {
        auto other = nodes_.find(out);
        if (other != nodes_.end()) {
            other->second.incoming.erase(id);
            ++stats_.linksUnpatched;
        }
    }
    byEntry_.erase(node.entry);
    exitCache_[node.slot] = ExitCache{};
    nodes_.erase(it);
}

void
TraceLinker::onTraceMoved(cache::TraceId id)
{
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
        GENCACHE_PANIC("moving trace {} unknown to the linker", id);
    }
    ++stats_.relocations;
    // Every patched edge touching the trace is re-patched to the new
    // address: count but keep the graph.
    stats_.linksPatched +=
        it->second.incoming.size() + it->second.outgoing.size();
}

bool
TraceLinker::linked(cache::TraceId from, cache::TraceId to) const
{
    auto it = nodes_.find(from);
    return it != nodes_.end() && it->second.outgoing.count(to) != 0;
}

std::size_t
TraceLinker::linkCount() const
{
    std::size_t count = 0;
    for (const auto &[id, node] : nodes_) {
        count += node.outgoing.size();
    }
    return count;
}

cache::TraceId
TraceLinker::traceAt(isa::GuestAddr addr) const
{
    auto it = byEntry_.find(addr);
    return it == byEntry_.end() ? cache::kInvalidTrace : it->second;
}

} // namespace gencache::runtime
