/**
 * @file
 * The dynamic optimizer runtime: a DynamoRIO-like execution engine for
 * synthetic guest programs.
 *
 * Execution alternates between:
 *  - the *basic-block path*: blocks are copied into the basic-block
 *    cache and interpreted, while trace-head counters accumulate;
 *  - *trace generation mode*: once a head crosses the threshold, the
 *    executed path is recorded into a superblock (NET) and inserted
 *    into the managed trace cache; and
 *  - *trace execution*: resident traces run from the code cache,
 *    tail-chaining through patched links without dispatcher round
 *    trips.
 *
 * Every trace creation, execution, and module load/unload is appended
 * to an AccessLog, making live runs replayable by the trace-driven
 * simulator (src/sim) — the same structure as the paper's
 * DynamoRIO-log-plus-cache-simulator methodology.
 *
 * Simplification vs. DynamoRIO (documented in DESIGN.md): on a code
 * cache miss the trace is regenerated immediately rather than
 * re-warming its head counter, matching the cost composition of §6.2
 * (a conflict miss costs two context switches, one regeneration, one
 * copy); and traces stop at module boundaries so a fragment always
 * belongs to exactly one module.
 */

#ifndef GENCACHE_RUNTIME_RUNTIME_H
#define GENCACHE_RUNTIME_RUNTIME_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "codecache/cache_manager.h"
#include "guest/address_space.h"
#include "interp/interpreter.h"
#include "opt/passes.h"
#include "runtime/bb_cache.h"
#include "runtime/linker.h"
#include "runtime/trace.h"
#include "runtime/trace_head.h"
#include "tracelog/event.h"

namespace gencache::runtime {

/** Where the guest's retired instructions were executed. */
struct RuntimeStats
{
    std::uint64_t instructionsInterpreted = 0; ///< bb-cache path
    std::uint64_t instructionsInTraces = 0;    ///< trace cache path
    std::uint64_t contextSwitches = 0;
    std::uint64_t tracesBuilt = 0;
    std::uint64_t traceRegenerations = 0;
    std::uint64_t traceExecutions = 0;
    std::uint64_t blocksInterpreted = 0;
    std::uint64_t tracesOptimized = 0;
    std::uint64_t optimizerBytesSaved = 0;
    std::uint64_t optimizerInstsRemoved = 0;

    std::uint64_t totalInstructions() const
    {
        return instructionsInterpreted + instructionsInTraces;
    }

    /** Fraction of execution spent inside the trace cache. */
    double cacheResidency() const
    {
        std::uint64_t total = totalInstructions();
        return total == 0 ? 0.0
                          : static_cast<double>(instructionsInTraces) /
                                static_cast<double>(total);
    }
};

/**
 * Which front end produces the access log. Both are bit-identical in
 * emitted events and statistics (tests/test_frontend_identity.cc);
 * Predecoded is the default and replaces the per-block hash/map
 * lookups of the legacy path with dense-array reads over the
 * AddressSpace block index, mirroring ReplayEngine::Legacy as the
 * replay side's escape hatch.
 */
enum class FrontEnd : std::uint8_t {
    Legacy,     ///< hash-map dispatch, re-decoded instruction walk
    Predecoded, ///< flat dispatch table + predecoded streams
};

/** The dynamic optimizer. */
class Runtime : public cache::CacheEventListener
{
  public:
    /**
     * @param space the guest address space (modules must already be
     *        mapped or mapped later via loadModule)
     * @param manager the global code cache manager under test
     * @param trace_threshold trace-head executions before generation
     * @param frontend fast predecoded path (default) or the legacy
     *        reference path
     */
    Runtime(guest::AddressSpace &space, cache::CacheManager &manager,
            std::uint32_t trace_threshold = kDefaultTraceThreshold,
            FrontEnd frontend = FrontEnd::Predecoded);

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Map @p module and log the load event. */
    void loadModule(const guest::GuestModule &module);

    /** Unmap @p module: invalidates its basic blocks and traces
     *  everywhere and logs the unload event. */
    void unloadModule(guest::ModuleId module);

    /** Begin guest execution at @p entry. */
    void start(isa::GuestAddr entry);

    /** @return true when the guest has executed Halt. */
    bool finished() const { return state_.halted; }

    /**
     * Run until the guest halts or @p max_instructions more
     * instructions retire.
     * @return instructions retired by this call.
     */
    std::uint64_t run(std::uint64_t max_instructions = ~0ULL);

    /** Virtual time: total instructions retired so far. */
    TimeUs now() const { return interp_.instructionsRetired(); }

    const RuntimeStats &stats() const { return stats_; }

    /** Stats of whichever basic-block cache the active front end
     *  uses (the other one stays empty). */
    const BbCacheStats &bbCacheStats() const
    {
        return frontend_ == FrontEnd::Legacy ? bbCache_.stats()
                                             : denseBbCache_.stats();
    }

    /** The active front end. */
    FrontEnd frontend() const { return frontend_; }

    const TraceLinker &linker() const { return linker_; }
    const tracelog::AccessLog &log() const { return log_; }
    const interp::CpuState &cpu() const { return state_; }

    /** Read a guest register (phase tracking in harnesses). */
    std::int64_t guestReg(unsigned index) const
    {
        return state_.regs[index];
    }

    /** Number of distinct traces ever built. */
    std::size_t traceCount() const { return traces_.size(); }

    /** All live traces by id (introspection for the static checker;
     *  traces of unloaded modules are dropped). */
    const std::unordered_map<cache::TraceId, Trace> &traces() const
    {
        return traces_;
    }

    /** The managed code cache under test. */
    const cache::CacheManager &manager() const { return manager_; }

    /** The guest address space (and its dense block index). */
    const guest::AddressSpace &space() const { return space_; }

    /** The dense dispatch table: dense block id -> trace id entered
     *  at that block, or cache::kInvalidTrace. Maintained in both
     *  front-end modes; introspection for the static checker. */
    const std::vector<cache::TraceId> &dispatchTable() const
    {
        return traceIdOfBlock_;
    }

    /**
     * Install @p hook to run at phase boundaries: after every module
     * load/unload and at the end of each run() call. The static
     * checker's GENCACHE_CHECK support attaches its cheap passes here
     * (analysis::attachPhaseChecks); nullptr detaches.
     */
    void setCheckpointHook(std::function<void(const Runtime &)> hook)
    {
        checkpointHook_ = std::move(hook);
    }

    /** Forward cache events to @p listener as well (cost model). */
    void chainListener(cache::CacheEventListener *listener)
    {
        chained_ = listener;
    }

    /** Enable/disable trace optimization (default: enabled). When
     *  enabled, freshly selected superblocks run through the opt
     *  pipeline and the *optimized* size is what the code cache
     *  stores. */
    void setOptimizeTraces(bool enabled)
    {
        optimizeTraces_ = enabled;
    }

    /// @name CacheEventListener (keeps linker and maps in sync).
    /// @{
    void onMiss(cache::TraceId id, TimeUs time) override;
    void onHit(cache::TraceId id, cache::Generation gen,
               TimeUs time) override;
    void onInsert(const cache::Fragment &frag, cache::Generation gen,
                  TimeUs time) override;
    void onEvict(const cache::Fragment &frag, cache::Generation gen,
                 cache::EvictReason reason, TimeUs time) override;
    void onPromote(const cache::Fragment &frag, cache::Generation from,
                   cache::Generation to, TimeUs time) override;
    /// @}

  private:
    /** One dispatcher iteration: run a trace or interpret a block. */
    void dispatch();

    /** dispatch() for the predecoded front end: flat dispatch table
     *  and dense-id execution. */
    void dispatchFast();

    /** Execute the resident trace @p id from its entry.
     *  @return the trace id tail-chained into, or kInvalidTrace when
     *  control returned to the dispatcher. */
    cache::TraceId executeTrace(cache::TraceId id);

    /** executeTrace() for the predecoded front end: predecoded block
     *  streams and direct chaining through the linker's cached
     *  successor slots (no dispatcher hash lookup on linked exits).
     *  Works on dense TraceSlots, not canonical ids — canonical
     *  (module, offset) ids are sparse 64-bit keys, so the flat
     *  hot-path tables index by slot. */
    TraceSlot executeTraceFast(TraceSlot slot);

    /** Interpret one block through the bb cache, maintaining trace
     *  head counters and possibly entering trace generation. */
    void interpretBlock();

    /** interpretBlock() for the predecoded front end; @p block is the
     *  dense id of the block at the current pc (kInvalidBlockId
     *  panics with mapping context). */
    void interpretBlockFast(guest::BlockId block);

    /** Record a new trace starting at the hot head @p entry. */
    void buildTrace(isa::GuestAddr entry);

    /** Re-insert a previously built trace after a cache miss. */
    bool regenerate(cache::TraceId id);

    /** Insert @p trace into the managed cache and link it. */
    bool installTrace(const Trace &trace);

    /** Register a freshly built trace in the lookup structures (both
     *  the legacy entry map and the dense dispatch table). */
    Trace &registerTrace(cache::TraceId id, Trace trace);

    /** Grow the dense per-block side tables to the address space's
     *  current block-id limit (after every module load). */
    void syncBlockCapacity();

    /// @name Mode-dispatching helpers for shared cold paths
    /// (trace generation), so both front ends consult the same head
    /// and bb-cache state they maintain in their hot loops.
    /// @{
    bool isTraceEntry(isa::GuestAddr addr) const;
    bool isHeadAt(isa::GuestAddr addr) const;
    void removeHeadAt(isa::GuestAddr addr);
    void fetchBlock(isa::GuestAddr addr, const isa::BasicBlock &source,
                    guest::ModuleId module);
    /// @}

    guest::AddressSpace &space_;
    cache::CacheManager &manager_;
    interp::Interpreter interp_;
    interp::CpuState state_;
    FrontEnd frontend_;
    BasicBlockCache bbCache_;        ///< legacy mode only
    DenseBlockCache denseBbCache_;   ///< predecoded mode only
    TraceHeadTable heads_;           ///< legacy mode only
    DenseTraceHeadTable denseHeads_; ///< predecoded mode only
    TraceBuilder builder_;
    TraceLinker linker_;
    opt::PassManager optimizer_ = opt::makeDefaultPipeline();
    bool optimizeTraces_ = true;
    tracelog::AccessLog log_;
    RuntimeStats stats_;
    cache::CacheEventListener *chained_ = nullptr;
    std::function<void(const Runtime &)> checkpointHook_;

    std::unordered_map<cache::TraceId, Trace> traces_;
    std::unordered_map<isa::GuestAddr, cache::TraceId> traceIdOfEntry_;
    /** Dense dispatch table: block id -> canonical id of the trace
     *  entered there. */
    std::vector<cache::TraceId> traceIdOfBlock_;
    /** Dense dispatch sidecar: block id -> slot of the trace entered
     *  there (the fast path's flat-array handle for the same trace
     *  traceIdOfBlock_ names). */
    std::vector<TraceSlot> slotOfBlock_;
    /** Slot -> Trace lookup (pointers into traces_, whose nodes are
     *  address-stable; null once the trace is dropped). Slots are
     *  assigned sequentially at registration and never reused. */
    std::vector<Trace *> traceBySlot_;
    bool started_ = false;
};

} // namespace gencache::runtime

#endif // GENCACHE_RUNTIME_RUNTIME_H
