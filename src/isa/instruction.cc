#include "isa/instruction.h"

#include "support/format.h"
#include "support/logging.h"

namespace gencache::isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::AddImm: return "addi";
      case Opcode::MovImm: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Jump: return "jmp";
      case Opcode::BranchNz: return "bnz";
      case Opcode::BranchZ: return "bz";
      case Opcode::JumpReg: return "jmpr";
      case Opcode::Call: return "call";
      case Opcode::CallReg: return "callr";
      case Opcode::Return: return "ret";
      case Opcode::Halt: return "halt";
    }
    GENCACHE_PANIC("opcodeName: unknown opcode {}",
                   static_cast<int>(op));
}

unsigned
opcodeSize(Opcode op)
{
    // Variable-length encodings chosen to mimic the byte-size mix of
    // IA-32 code (short register ops, longer immediates and transfers).
    switch (op) {
      case Opcode::Nop: return 1;
      case Opcode::Add: return 3;
      case Opcode::Sub: return 3;
      case Opcode::Mul: return 3;
      case Opcode::AddImm: return 5;
      case Opcode::MovImm: return 6;
      case Opcode::Mov: return 2;
      case Opcode::Load: return 4;
      case Opcode::Store: return 4;
      case Opcode::Jump: return 5;
      case Opcode::BranchNz: return 6;
      case Opcode::BranchZ: return 6;
      case Opcode::JumpReg: return 3;
      case Opcode::Call: return 5;
      case Opcode::CallReg: return 3;
      case Opcode::Return: return 1;
      case Opcode::Halt: return 1;
    }
    GENCACHE_PANIC("opcodeSize: unknown opcode {}",
                   static_cast<int>(op));
}

bool
isControlFlow(Opcode op)
{
    switch (op) {
      case Opcode::Jump:
      case Opcode::BranchNz:
      case Opcode::BranchZ:
      case Opcode::JumpReg:
      case Opcode::Call:
      case Opcode::CallReg:
      case Opcode::Return:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

bool
isConditionalBranch(Opcode op)
{
    return op == Opcode::BranchNz || op == Opcode::BranchZ;
}

bool
isIndirect(Opcode op)
{
    return op == Opcode::JumpReg || op == Opcode::CallReg ||
           op == Opcode::Return;
}

std::string
Instruction::toString() const
{
    switch (opcode) {
      case Opcode::Nop:
      case Opcode::Return:
      case Opcode::Halt:
        return opcodeName(opcode);
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
        return format("{} r{}, r{}, r{}", opcodeName(opcode),
                      int{dst}, int{src1}, int{src2});
      case Opcode::AddImm:
        return format("addi r{}, r{}, {}", int{dst}, int{src1}, imm);
      case Opcode::MovImm:
        return format("movi r{}, {}", int{dst}, imm);
      case Opcode::Mov:
        return format("mov r{}, r{}", int{dst}, int{src1});
      case Opcode::Load:
        return format("load r{}, [r{}+{}]", int{dst}, int{src1}, imm);
      case Opcode::Store:
        return format("store [r{}+{}], r{}", int{src1}, imm, int{src2});
      case Opcode::Jump:
        return format("jmp {}", target);
      case Opcode::BranchNz:
        return format("bnz r{}, {}", int{src1}, target);
      case Opcode::BranchZ:
        return format("bz r{}, {}", int{src1}, target);
      case Opcode::JumpReg:
        return format("jmpr r{}", int{src1});
      case Opcode::Call:
        return format("call {}", target);
      case Opcode::CallReg:
        return format("callr r{}", int{src1});
    }
    GENCACHE_PANIC("Instruction::toString: unknown opcode");
}

namespace {

std::uint8_t
checkReg(unsigned reg)
{
    if (reg >= kNumRegs) {
        GENCACHE_PANIC("register r{} out of range", reg);
    }
    return static_cast<std::uint8_t>(reg);
}

} // namespace

Instruction
makeNop()
{
    return Instruction{};
}

Instruction
makeAdd(unsigned dst, unsigned src1, unsigned src2)
{
    Instruction inst;
    inst.opcode = Opcode::Add;
    inst.dst = checkReg(dst);
    inst.src1 = checkReg(src1);
    inst.src2 = checkReg(src2);
    return inst;
}

Instruction
makeSub(unsigned dst, unsigned src1, unsigned src2)
{
    Instruction inst = makeAdd(dst, src1, src2);
    inst.opcode = Opcode::Sub;
    return inst;
}

Instruction
makeMul(unsigned dst, unsigned src1, unsigned src2)
{
    Instruction inst = makeAdd(dst, src1, src2);
    inst.opcode = Opcode::Mul;
    return inst;
}

Instruction
makeAddImm(unsigned dst, unsigned src1, std::int64_t imm)
{
    Instruction inst;
    inst.opcode = Opcode::AddImm;
    inst.dst = checkReg(dst);
    inst.src1 = checkReg(src1);
    inst.imm = imm;
    return inst;
}

Instruction
makeMovImm(unsigned dst, std::int64_t imm)
{
    Instruction inst;
    inst.opcode = Opcode::MovImm;
    inst.dst = checkReg(dst);
    inst.imm = imm;
    return inst;
}

Instruction
makeMov(unsigned dst, unsigned src1)
{
    Instruction inst;
    inst.opcode = Opcode::Mov;
    inst.dst = checkReg(dst);
    inst.src1 = checkReg(src1);
    return inst;
}

Instruction
makeLoad(unsigned dst, unsigned base, std::int64_t offset)
{
    Instruction inst;
    inst.opcode = Opcode::Load;
    inst.dst = checkReg(dst);
    inst.src1 = checkReg(base);
    inst.imm = offset;
    return inst;
}

Instruction
makeStore(unsigned base, std::int64_t offset, unsigned src)
{
    Instruction inst;
    inst.opcode = Opcode::Store;
    inst.src1 = checkReg(base);
    inst.src2 = checkReg(src);
    inst.imm = offset;
    return inst;
}

Instruction
makeJump(GuestAddr target)
{
    Instruction inst;
    inst.opcode = Opcode::Jump;
    inst.target = target;
    return inst;
}

Instruction
makeBranchNz(unsigned src, GuestAddr target)
{
    Instruction inst;
    inst.opcode = Opcode::BranchNz;
    inst.src1 = checkReg(src);
    inst.target = target;
    return inst;
}

Instruction
makeBranchZ(unsigned src, GuestAddr target)
{
    Instruction inst;
    inst.opcode = Opcode::BranchZ;
    inst.src1 = checkReg(src);
    inst.target = target;
    return inst;
}

Instruction
makeJumpReg(unsigned src)
{
    Instruction inst;
    inst.opcode = Opcode::JumpReg;
    inst.src1 = checkReg(src);
    return inst;
}

Instruction
makeCall(GuestAddr target)
{
    Instruction inst;
    inst.opcode = Opcode::Call;
    inst.target = target;
    return inst;
}

Instruction
makeCallReg(unsigned src)
{
    Instruction inst;
    inst.opcode = Opcode::CallReg;
    inst.src1 = checkReg(src);
    return inst;
}

Instruction
makeReturn()
{
    Instruction inst;
    inst.opcode = Opcode::Return;
    return inst;
}

Instruction
makeHalt()
{
    Instruction inst;
    inst.opcode = Opcode::Halt;
    return inst;
}

} // namespace gencache::isa
