#include "isa/basic_block.h"

#include "support/format.h"
#include "support/logging.h"

namespace gencache::isa {

void
BasicBlock::append(const Instruction &inst)
{
    if (isTerminated()) {
        GENCACHE_PANIC("append to terminated block at {}", start_);
    }
    insts_.push_back(inst);
    sizeBytes_ += inst.sizeBytes();
}

const Instruction &
BasicBlock::terminator() const
{
    if (!isTerminated()) {
        GENCACHE_PANIC("block at {} has no terminator", start_);
    }
    return insts_.back();
}

bool
BasicBlock::isTerminated() const
{
    return !insts_.empty() && isControlFlow(insts_.back().opcode);
}

std::string
BasicBlock::toString() const
{
    std::string out = format("block @{} ({} bytes):\n", start_,
                             sizeBytes_);
    GuestAddr addr = start_;
    for (const Instruction &inst : insts_) {
        out += format("  {}: {}\n", addr, inst.toString());
        addr += inst.sizeBytes();
    }
    return out;
}

} // namespace gencache::isa
