/**
 * @file
 * Basic blocks of the synthetic guest ISA.
 *
 * A basic block is a single-entry single-exit instruction sequence: zero
 * or more non-control-flow instructions followed by exactly one
 * control-flow terminator. Blocks are the unit the dynamic optimizer
 * copies into its basic-block cache and stitches into traces.
 */

#ifndef GENCACHE_ISA_BASIC_BLOCK_H
#define GENCACHE_ISA_BASIC_BLOCK_H

#include <string>
#include <vector>

#include "isa/instruction.h"

namespace gencache::isa {

/** A single-entry single-exit sequence of guest instructions. */
class BasicBlock
{
  public:
    BasicBlock() = default;

    /** @param start the guest address of the first instruction. */
    explicit BasicBlock(GuestAddr start) : start_(start) {}

    GuestAddr startAddr() const { return start_; }
    void setStartAddr(GuestAddr addr) { start_ = addr; }

    /** Append an instruction; control flow must come last. */
    void append(const Instruction &inst);

    const std::vector<Instruction> &instructions() const { return insts_; }

    std::size_t instructionCount() const { return insts_.size(); }

    bool empty() const { return insts_.empty(); }

    /** @return total encoded size of the block in bytes. */
    unsigned sizeBytes() const { return sizeBytes_; }

    /** @return the address just past the last instruction. */
    GuestAddr endAddr() const { return start_ + sizeBytes_; }

    /** @return the terminating instruction; panics when the block is
     *  empty or unterminated. */
    const Instruction &terminator() const;

    /** @return true when the block ends in a control-flow instruction. */
    bool isTerminated() const;

    /** @return the fall-through address (address past the terminator);
     *  only meaningful for conditional branches and calls. */
    GuestAddr fallThroughAddr() const { return endAddr(); }

    /** @return a multi-line disassembly of the block. */
    std::string toString() const;

  private:
    GuestAddr start_ = 0;
    unsigned sizeBytes_ = 0;
    std::vector<Instruction> insts_;
};

} // namespace gencache::isa

#endif // GENCACHE_ISA_BASIC_BLOCK_H
