/**
 * @file
 * The synthetic guest instruction set.
 *
 * gencache does not execute IA-32; the cache-management problem only
 * depends on the dynamic stream of basic blocks, so we define a compact
 * RISC-like ISA with variable-length encodings (to model x86-like code
 * footprints) that is rich enough to express loops, calls, indirect
 * jumps, and module-crossing control flow.
 */

#ifndef GENCACHE_ISA_INSTRUCTION_H
#define GENCACHE_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

namespace gencache::isa {

/** Guest virtual address. */
using GuestAddr = std::uint64_t;

/** Number of general-purpose guest registers. */
constexpr unsigned kNumRegs = 16;

/** Opcodes of the synthetic ISA. */
enum class Opcode : std::uint8_t {
    Nop,          ///< No operation.
    Add,          ///< dst = src1 + src2
    Sub,          ///< dst = src1 - src2
    Mul,          ///< dst = src1 * src2
    AddImm,       ///< dst = src1 + imm
    MovImm,       ///< dst = imm
    Mov,          ///< dst = src1
    Load,         ///< dst = mem[src1 + imm]
    Store,        ///< mem[src1 + imm] = src2
    Jump,         ///< pc = target (unconditional, direct)
    BranchNz,     ///< if (src1 != 0) pc = target, else fall through
    BranchZ,      ///< if (src1 == 0) pc = target, else fall through
    JumpReg,      ///< pc = src1 (indirect)
    Call,         ///< push return address; pc = target
    CallReg,      ///< push return address; pc = src1 (indirect)
    Return,       ///< pc = pop()
    Halt,         ///< stop the guest program
};

/** @return the mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** @return the encoded size in bytes of @p op (variable-length model). */
unsigned opcodeSize(Opcode op);

/** @return true when @p op ends a basic block. */
bool isControlFlow(Opcode op);

/** @return true for conditional branches (two successors). */
bool isConditionalBranch(Opcode op);

/** @return true for indirect transfers (target unknown statically). */
bool isIndirect(Opcode op);

/**
 * One decoded guest instruction. Plain value type; blocks own their
 * instructions by value.
 */
struct Instruction
{
    Opcode opcode = Opcode::Nop;
    std::uint8_t dst = 0;     ///< destination register
    std::uint8_t src1 = 0;    ///< first source register
    std::uint8_t src2 = 0;    ///< second source register
    std::int64_t imm = 0;     ///< immediate operand
    GuestAddr target = 0;     ///< direct control-flow target

    /** @return encoded size in bytes. */
    unsigned sizeBytes() const { return opcodeSize(opcode); }

    /** @return a human-readable disassembly of this instruction. */
    std::string toString() const;
};

/// @name Instruction constructors.
/// @{
Instruction makeNop();
Instruction makeAdd(unsigned dst, unsigned src1, unsigned src2);
Instruction makeSub(unsigned dst, unsigned src1, unsigned src2);
Instruction makeMul(unsigned dst, unsigned src1, unsigned src2);
Instruction makeAddImm(unsigned dst, unsigned src1, std::int64_t imm);
Instruction makeMovImm(unsigned dst, std::int64_t imm);
Instruction makeMov(unsigned dst, unsigned src1);
Instruction makeLoad(unsigned dst, unsigned base, std::int64_t offset);
Instruction makeStore(unsigned base, std::int64_t offset, unsigned src);
Instruction makeJump(GuestAddr target);
Instruction makeBranchNz(unsigned src, GuestAddr target);
Instruction makeBranchZ(unsigned src, GuestAddr target);
Instruction makeJumpReg(unsigned src);
Instruction makeCall(GuestAddr target);
Instruction makeCallReg(unsigned src);
Instruction makeReturn();
Instruction makeHalt();
/// @}

/// @name Guest ALU semantics: arithmetic wraps modulo 2^64.
/// Computed in unsigned so host-side signed overflow (undefined
/// behaviour) cannot occur. The interpreter, the superblock
/// straight-line evaluator, and constant folding all share these so
/// optimized traces stay bit-identical to interpretation.
/// @{
constexpr std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

constexpr std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

constexpr std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}
/// @}

} // namespace gencache::isa

#endif // GENCACHE_ISA_INSTRUCTION_H
