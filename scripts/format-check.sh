#!/usr/bin/env bash
# Check (or fix, with --fix) formatting of all C++ sources against the
# repository .clang-format. Skips gracefully when clang-format is not
# installed so that plain containers can still run scripts/ci.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

fix=0
if [[ "${1:-}" == "--fix" ]]; then
    fix=1
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format-check: clang-format not found on PATH; skipping" >&2
    exit 0
fi

mapfile -t files < <(git ls-files \
    'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'tools/*.cc' \
    'bench/*.cc' 'examples/*.cpp')

if [[ ${#files[@]} -eq 0 ]]; then
    echo "format-check: no sources found" >&2
    exit 2
fi

if [[ $fix -eq 1 ]]; then
    clang-format -i "${files[@]}"
    echo "format-check: reformatted ${#files[@]} files"
    exit 0
fi

bad=0
for f in "${files[@]}"; do
    if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
        echo "format-check: $f needs formatting"
        bad=1
    fi
done

if [[ $bad -ne 0 ]]; then
    echo "format-check: run scripts/format-check.sh --fix" >&2
    exit 1
fi
echo "format-check: ${#files[@]} files clean"
