#!/usr/bin/env bash
# Committed perf-artifact hygiene.
#
# Convention: BENCH_*.json files are build products and gitignored by
# default; an artifact is committed only when (a) a negation rule in
# .gitignore names it explicitly and (b) the producing bench binary is
# recorded inside the file itself ("bench": "<target>", a source file
# bench/<target>.cc). Every committed artifact must also carry the
# bench_util provenance stamp ("meta": git_sha/threads/simd/scale), so
# a reviewer can tell where the numbers came from.
#
# This script checks the mapping in both directions:
#   tracked BENCH_*.json  -> producing bench/<target>.cc exists,
#                            provenance meta complete,
#                            .gitignore negation present;
#   .gitignore negations  -> the named artifact is actually tracked.
#
# Exit: 0 clean, 1 violations, 77 when git/python3 is unavailable
# (ctest SKIP_RETURN_CODE).

set -u
cd "$(dirname "$0")/.."

if ! command -v git >/dev/null 2>&1 || ! command -v python3 >/dev/null 2>&1; then
    echo "check_bench_artifacts: git or python3 unavailable, skipping"
    exit 77
fi
if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    echo "check_bench_artifacts: not a git checkout, skipping"
    exit 77
fi

fail=0

tracked=$(git ls-files 'BENCH_*.json')

for artifact in $tracked; do
    # The producing bench target is recorded in the artifact itself.
    bench=$(python3 - "$artifact" <<'EOF'
import json, sys
try:
    print(json.load(open(sys.argv[1])).get("bench", ""))
except Exception:
    pass
EOF
)
    if [ -z "$bench" ]; then
        echo "FAIL: $artifact is not valid JSON with a \"bench\" key"
        fail=1
        continue
    fi
    if [ ! -f "bench/$bench.cc" ]; then
        echo "FAIL: $artifact claims producer '$bench' but bench/$bench.cc does not exist"
        fail=1
    fi
    if ! python3 - "$artifact" <<'EOF'
import json, sys
meta = json.load(open(sys.argv[1])).get("meta", {})
missing = [k for k in ("git_sha", "threads", "simd", "scale")
           if k not in meta]
sys.exit(1 if missing else 0)
EOF
    then
        echo "FAIL: $artifact lacks the bench_util provenance meta (git_sha/threads/simd/scale)"
        fail=1
    fi
    if ! grep -qx "!$artifact" .gitignore; then
        echo "FAIL: $artifact is tracked but .gitignore has no '!$artifact' negation"
        fail=1
    fi
done

# Reverse direction: every negation names a tracked artifact.
while IFS= read -r line; do
    case "$line" in
      '!BENCH_'*.json)
        artifact=${line#!}
        if ! git ls-files --error-unmatch "$artifact" >/dev/null 2>&1; then
            echo "FAIL: .gitignore negates $artifact but it is not tracked"
            fail=1
        fi
        ;;
    esac
done < .gitignore

if [ "$fail" -eq 0 ]; then
    count=$(echo "$tracked" | grep -c . || true)
    echo "check_bench_artifacts: $count committed artifact(s) map 1:1 to bench targets"
fi
exit $fail
