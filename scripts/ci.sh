#!/usr/bin/env bash
# Full local CI pipeline:
#   1. plain release-with-asserts build + complete ctest suite
#   2. the same suite again under GENCACHE_CHECK=1 (phase-boundary
#      invariant passes active inside the runtime/simulator tests)
#   3. ThreadSanitizer build, running the `tsan`-labelled concurrency
#      tests (thread pool, parallel sweep, and the fleet simulator's
#      racing shared-store processes) plus the fleet_replay smoke
#      bench — the shared code store's shard locks under real races
#   4. AddressSanitizer+UBSan build: first the `replay`-, `frontend`-
#      and `tiers`-labelled bit-identity tests (compiled/batched
#      replay vs the legacy loop, predecoded front end vs legacy
#      dispatch, tier-pipeline adapters vs the frozen pre-refactor
#      managers — the memory-unsafe-optimization tripwires), then the
#      rest of the suite
#   5. smoke policy tournament (2 profiles x ~28 configurations) —
#      the sharded multi-config replay driver end-to-end, run in the
#      plain build and (unless --fast) again under ASan+UBSan; the
#      `tournament`-labelled determinism/Pareto tests run in step 1
#      with the rest of the suite
#   6. GENCACHE_SIMD=OFF build: the scalar-only fallback must build
#      and pass the replay bit-identity and SIMD-kernel tests
#   7. gencheck over the example workloads — topology lints, live
#      runs, legacy sim replays, and batched-replay end states; any
#      diagnostic of severity error (or worse) fails the pipeline
#   8. gencheck temporal over recorded journals: record gzip and mpeg
#      event streams with logreplay_tool, then replay them offline
#      through the temporal invariant engine (gencheck --journal);
#      also exercises the distinct load-failure exit code (3)
#   9. clang -Wthread-safety -Werror compile of the annotated tree
#      (ThreadPool, shared sweep/tournament state); self-skips with a
#      notice when no clang toolchain is installed
#  10. formatting check (no-op when clang-format is absent)
#
# Usage: scripts/ci.sh [--fast]
#   --fast skips the sanitizer builds (steps 3, 4, and the sanitized
#   half of 5).
set -euo pipefail

cd "$(dirname "$0")/.."
root=$(pwd)
jobs=$(nproc 2>/dev/null || echo 4)

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

step() { echo; echo "=== ci: $* ==="; }

step "plain build + full test suite"
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    >/tmp/gencache-ci-configure.log
cmake --build build-ci -j "$jobs"
ctest --test-dir build-ci --output-on-failure -j "$jobs"

step "full test suite with GENCACHE_CHECK=1"
GENCACHE_CHECK=1 ctest --test-dir build-ci --output-on-failure \
    -j "$jobs"

if [[ $fast -eq 0 ]]; then
    step "ThreadSanitizer build + tsan-labelled tests"
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGENCACHE_SANITIZE=thread >/tmp/gencache-tsan-configure.log
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan --output-on-failure -L tsan \
        -j "$jobs"

    step "fleet_replay smoke bench (TSan build)"
    # The threaded leg races every process on the store's shard
    # locks; TSan must stay silent.
    (cd build-tsan && bench/fleet_replay --smoke)

    step "ASan+UBSan build + replay/frontend/tiers bit-identity tests"
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGENCACHE_SANITIZE=address,undefined \
        >/tmp/gencache-asan-configure.log
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan --output-on-failure \
        -L "replay|frontend|tiers" -j "$jobs"

    step "ASan+UBSan remaining test suite"
    ctest --test-dir build-asan --output-on-failure \
        -LE "replay|frontend|tiers" -j "$jobs"
else
    step "skipping sanitizer builds (--fast)"
fi

step "smoke policy tournament (plain build)"
(cd build-ci && bench/policy_tournament --smoke)

step "fleet_replay smoke bench (plain build)"
(cd build-ci && bench/fleet_replay --smoke)

if [[ $fast -eq 0 ]]; then
    step "smoke policy tournament (ASan+UBSan build)"
    (cd build-asan && bench/policy_tournament --smoke)
fi

step "GENCACHE_SIMD=OFF scalar-fallback build + replay/simd tests"
cmake -B build-nosimd -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGENCACHE_SIMD=OFF >/tmp/gencache-nosimd-configure.log
cmake --build build-nosimd -j "$jobs"
ctest --test-dir build-nosimd --output-on-failure \
    -R "Simd|ReplayIdentity.BlockedKernelMatchesReferenceAcrossLaneCounts|CompiledLog" \
    -j "$jobs"

step "gencheck on example workloads"
# gencheck exits 1 on any error-severity diagnostic (its subjects
# include batched-replay lane end states); keep the JSON report as a
# CI artifact.
"$root"/build-ci/tools/gencheck --json build-ci/gencheck-report.json

step "gencheck temporal over recorded journals"
mkdir -p build-ci/journals
"$root"/build-ci/examples/logreplay_tool generate gzip \
    build-ci/journals/gzip.gclogb
"$root"/build-ci/examples/logreplay_tool generate mpeg \
    build-ci/journals/mpeg.gclogb
"$root"/build-ci/tools/gencheck \
    --journal build-ci/journals/gzip.gclogb \
    --journal build-ci/journals/mpeg.gclogb \
    --json build-ci/gencheck-temporal-report.json
# The load-failure exit code must stay distinct from "found errors".
load_rc=0
"$root"/build-ci/tools/gencheck \
    --journal build-ci/journals/does-not-exist.gclogb \
    --quiet 2>/dev/null || load_rc=$?
if [[ $load_rc -ne 3 ]]; then
    echo "ci: gencheck load failure must exit 3 (got $load_rc)" >&2
    exit 1
fi

step "clang -Wthread-safety compile"
if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" \
        >/tmp/gencache-tsa-configure.log
    cmake --build build-tsa -j "$jobs"
else
    echo "ci: clang++ not installed; skipping thread-safety analysis"
fi

step "format check"
scripts/format-check.sh

echo
echo "=== ci: all stages passed ==="
